// Package trace records, replays, and composes allocation/access
// scenarios — the afftrace/v1 format.
//
// A trace is a sequence of scenarios. Each scenario carries the machine
// configuration it was recorded under (mesh, seed, policy, faults,
// mode) and an ordered event stream: pool opens, allocations with their
// affinity-hint edges, frees, access summaries (per-structure chunk
// touch streams), and stream-issue summaries (offloads, migrations).
//
// Events reference earlier allocations *symbolically*: an allocation
// event's ID is its 1-based position among the tenant's allocation
// events, and affinity hints are (ID, element/byte offset) pairs rather
// than raw addresses. That makes a trace relocatable — replay re-drives
// the same allocator entry points on a fresh system and resolves edges
// against the replayed bases, so a recorded scenario can be replayed
// under a different mode, policy, fault spec, or shard count, or
// composed with other tenants into a colocation scenario.
//
// The recorder observes only *outcomes* of completed calls (it is
// attached via observer hooks that read nothing back), so a recording
// run is byte-identical to a direct run; and replay re-drives exactly
// the observed outermost calls, so the allocator — including its RNG
// draw sequence — walks the identical state trajectory. Those two
// properties are the replay differential gate pinning this package.
//
// Two interchangeable encodings exist: a length-framed, CRC-checked
// binary stream (compact, fuzzed) and JSONL (greppable, diffable,
// committed as golden test data). ReadFile/Decode auto-detect.
package trace

import (
	"fmt"
	"sort"

	"affinityalloc/internal/core"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/sys"
)

// Version is the format identifier written into every trace.
const Version = "afftrace/v1"

// Event kinds.
const (
	KindOpenPool = "open_pool"
	KindAlloc    = "alloc"
	KindFree     = "free"
	KindAccess   = "access"
	KindPreload  = "preload"
	KindStream   = "stream"
)

// Allocation ops (Event.Op for KindAlloc events), matching the public
// core.Runtime entry points.
const (
	OpAffine     = "affine"      // AllocAffine
	OpAffineBank = "affine_bank" // AllocAffineAtBank
	OpNear       = "near"        // AllocNear
	OpNearBank   = "near_bank"   // AllocAtBank
	OpBase       = "base"        // AllocBase
)

// Ref is a symbolic affinity edge: a pointer into an earlier allocation
// of the same tenant. Ref is the 1-based allocation-event ID (0 means
// the hint did not land in any live recorded allocation and Raw holds
// the original address verbatim). Elem, when >= 0, addresses element
// Elem of an affine target (the wire-convertible form); otherwise Off
// is a byte offset from the target's base.
type Ref struct {
	Ref  int64  `json:"ref,omitempty"`
	Elem int64  `json:"elem"`
	Off  int64  `json:"off,omitempty"`
	Raw  uint64 `json:"raw,omitempty"`
}

// Touch is one chunk's access count within an access-summary event.
type Touch struct {
	Chunk  int64  `json:"c"`
	Reads  uint32 `json:"r,omitempty"`
	Writes uint32 `json:"w,omitempty"`
}

// Flow is one aggregated stream-issue edge (offload config packets from
// a core tile to a first bank, or stream-state migrations bank→bank).
type Flow struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	N    uint32 `json:"n"`
}

// Event is one trace record. Kind selects which fields are meaningful;
// unused fields stay at their zero value and are omitted on the wire.
type Event struct {
	Kind string `json:"ev"`
	// Tenant tags composed scenarios; single-tenant recordings use 0.
	Tenant int `json:"tenant,omitempty"`

	// KindOpenPool.
	Interleave int `json:"interleave,omitempty"`

	// KindAlloc. The event's allocation ID is implicit: the 1-based
	// count of KindAlloc events of the same tenant up to and including
	// this one. Mode, when set, overrides the scenario mode for this
	// allocation (recorded tenant streams mix modes per request).
	Op       string `json:"op,omitempty"`
	Mode     string `json:"mode,omitempty"`
	ElemSize int    `json:"elem_size,omitempty"`
	NumElem  int64  `json:"num_elem,omitempty"`
	AlignRef int64  `json:"align_ref,omitempty"`
	AlignRaw uint64 `json:"align_raw,omitempty"`
	AlignP   int    `json:"align_p,omitempty"`
	AlignQ   int    `json:"align_q,omitempty"`
	AlignX   int64  `json:"align_x,omitempty"`
	Part     bool   `json:"part,omitempty"`
	Size     int64  `json:"size,omitempty"`
	Bank     int    `json:"bank,omitempty"`
	Affinity []Ref  `json:"aff,omitempty"`
	// Recorded outcome, kept for the record→replay placement identity
	// gate (replay recomputes these and byte-compares the dumps).
	Base       uint64 `json:"base,omitempty"`
	ResIl      int    `json:"il,omitempty"`
	Stride     int    `json:"stride,omitempty"`
	StartBank  int    `json:"start_bank,omitempty"`
	PageMapped bool   `json:"page_mapped,omitempty"`
	Err        string `json:"err,omitempty"`

	// KindFree. Ref is the allocation-event ID being released; Raw holds
	// the original address when the free did not match a live recorded
	// allocation (replay re-drives it verbatim to reproduce the error).
	Ref int64  `json:"ref,omitempty"`
	Raw uint64 `json:"raw,omitempty"`

	// KindAccess: chunk-granular touch counts against allocation Ref
	// (0 = wild access; Chunk then holds an absolute line index).
	// KindPreload reuses Ref/Off/Size.
	Gran    int64   `json:"gran,omitempty"`
	Off     int64   `json:"off,omitempty"`
	Touches []Touch `json:"touches,omitempty"`

	// KindStream: aggregated offload and migration flows.
	Offloads []Flow `json:"offloads,omitempty"`
	Migs     []Flow `json:"migs,omitempty"`
}

// Scenario is one recorded (or composed) run: the configuration it was
// captured under plus its ordered event stream.
type Scenario struct {
	Label string `json:"label"`
	// Mode is the execution mode the scenario was recorded under
	// (sys.Mode spelling). Replay may override it.
	Mode string `json:"mode"`
	// Machine shape and determinism inputs, enough to rebuild an
	// equivalent sys.Config on top of sys.DefaultConfig.
	MeshW  int    `json:"mesh_w"`
	MeshH  int    `json:"mesh_h"`
	Seed   int64  `json:"seed"`
	Policy string `json:"policy,omitempty"`
	Faults string `json:"faults,omitempty"`
	Shards int    `json:"shards,omitempty"`
	// Tenants names the interleaved tenants of a composed scenario;
	// empty means single-tenant (tenant 0 = Label).
	Tenants []string `json:"tenants,omitempty"`
	// Cycles is the recorded run's finish time (informational).
	Cycles uint64 `json:"cycles,omitempty"`

	Events []Event `json:"-"`
}

// Trace is a sequence of scenarios.
type Trace struct {
	Scenarios []*Scenario
}

// NumTenants returns the tenant count (>= 1).
func (s *Scenario) NumTenants() int {
	if len(s.Tenants) > 1 {
		return len(s.Tenants)
	}
	return 1
}

// TenantLabel names one tenant.
func (s *Scenario) TenantLabel(t int) string {
	if t < len(s.Tenants) {
		return s.Tenants[t]
	}
	if t == 0 {
		return s.Label
	}
	return fmt.Sprintf("tenant%d", t)
}

// AllocCount returns the number of allocation events per tenant — the
// ID namespace size the composer needs to offset churn-cycle refs.
func (s *Scenario) AllocCount(tenant int) int64 {
	var n int64
	for i := range s.Events {
		if s.Events[i].Tenant == tenant && s.Events[i].Kind == KindAlloc {
			n++
		}
	}
	return n
}

// Config rebuilds a sys.Config equivalent to the one the scenario was
// recorded under: sys defaults with the scenario's recorded shape,
// seed, policy, faults, and shard count applied.
func (s *Scenario) Config() (sys.Config, error) {
	cfg := sys.DefaultConfig()
	if s.MeshW > 0 {
		cfg.MeshW = s.MeshW
	}
	if s.MeshH > 0 {
		cfg.MeshH = s.MeshH
	}
	cfg.Seed = s.Seed
	cfg.Shards = s.Shards
	if s.Policy != "" {
		p, err := core.ParsePolicy(s.Policy)
		if err != nil {
			return cfg, fmt.Errorf("trace: scenario %q: %v", s.Label, err)
		}
		cfg.Policy = p
	}
	if s.Faults != "" {
		f, err := faults.Parse(s.Faults)
		if err != nil {
			return cfg, fmt.Errorf("trace: scenario %q: %v", s.Label, err)
		}
		cfg.Faults = f
	}
	return cfg, nil
}

// Validate checks the structural invariants replay depends on: known
// event kinds and ops, refs that point at already-seen allocations of
// the same tenant, and sane sizes. Decoders call it so a fuzzer cannot
// construct a trace that panics replay.
func (t *Trace) Validate() error {
	for si, sc := range t.Scenarios {
		if err := sc.Validate(); err != nil {
			return fmt.Errorf("trace: scenario %d: %v", si, err)
		}
	}
	return nil
}

// Validate checks one scenario (see Trace.Validate).
func (s *Scenario) Validate() error {
	if s.Mode != "" {
		if _, err := sys.ParseMode(s.Mode); err != nil {
			return err
		}
	}
	allocs := map[int]int64{} // tenant -> alloc events seen
	checkRef := func(tenant int, ref int64) error {
		if ref < 0 || ref > allocs[tenant] {
			return fmt.Errorf("ref %d out of range (tenant %d has %d allocs so far)", ref, tenant, allocs[tenant])
		}
		return nil
	}
	for ei := range s.Events {
		e := &s.Events[ei]
		if e.Tenant < 0 || e.Tenant >= maxTenants {
			return fmt.Errorf("event %d: tenant %d out of range", ei, e.Tenant)
		}
		switch e.Kind {
		case KindOpenPool:
		case KindAlloc:
			switch e.Op {
			case OpAffine, OpAffineBank:
				if e.ElemSize < 0 || e.NumElem < 0 {
					return fmt.Errorf("event %d: negative affine spec", ei)
				}
				if err := checkRef(e.Tenant, e.AlignRef); err != nil {
					return fmt.Errorf("event %d: align: %v", ei, err)
				}
			case OpNear, OpNearBank, OpBase:
				if e.Size < 0 {
					return fmt.Errorf("event %d: negative size", ei)
				}
				for _, r := range e.Affinity {
					if err := checkRef(e.Tenant, r.Ref); err != nil {
						return fmt.Errorf("event %d: affinity: %v", ei, err)
					}
				}
			default:
				return fmt.Errorf("event %d: unknown alloc op %q", ei, e.Op)
			}
			if e.Mode != "" {
				if _, err := sys.ParseMode(e.Mode); err != nil {
					return fmt.Errorf("event %d: %v", ei, err)
				}
			}
			allocs[e.Tenant]++
		case KindFree:
			if err := checkRef(e.Tenant, e.Ref); err != nil {
				return fmt.Errorf("event %d: free: %v", ei, err)
			}
		case KindAccess:
			if e.Gran < 0 {
				return fmt.Errorf("event %d: negative gran", ei)
			}
			if err := checkRef(e.Tenant, e.Ref); err != nil {
				return fmt.Errorf("event %d: access: %v", ei, err)
			}
		case KindPreload:
			if e.Size < 0 || e.Off < 0 {
				return fmt.Errorf("event %d: negative preload extent", ei)
			}
			if err := checkRef(e.Tenant, e.Ref); err != nil {
				return fmt.Errorf("event %d: preload: %v", ei, err)
			}
		case KindStream:
		default:
			return fmt.Errorf("event %d: unknown kind %q", ei, e.Kind)
		}
	}
	return nil
}

// maxTenants bounds the tenant namespace; it exists so a fuzzed trace
// cannot request unbounded per-tenant state.
const maxTenants = 1 << 16

// sortTouches orders a touch list canonically (by chunk index).
func sortTouches(ts []Touch) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Chunk < ts[j].Chunk })
}

// sortFlows orders a flow list canonically.
func sortFlows(fs []Flow) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].From != fs[j].From {
			return fs[i].From < fs[j].From
		}
		return fs[i].To < fs[j].To
	})
}

package trace_test

import (
	"bytes"
	"testing"

	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
)

// Composition must be deterministic: same inputs and seed, same bytes.
func TestComposeDeterministic(t *testing.T) {
	a := recordTiny(t, tinyVecAdd(), sys.AffAlloc, 1)
	b := recordTiny(t, tinyHashJoin(), sys.AffAlloc, 1)
	opt := trace.ComposeOptions{Seed: 7, Churn: 1}
	c1, err := trace.Compose([]*trace.Scenario{a, b}, opt)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := trace.Compose([]*trace.Scenario{a, b}, opt)
	if err != nil {
		t.Fatal(err)
	}
	e1 := trace.EncodeJSONL(&trace.Trace{Scenarios: []*trace.Scenario{c1}})
	e2 := trace.EncodeJSONL(&trace.Trace{Scenarios: []*trace.Scenario{c2}})
	if !bytes.Equal(e1, e2) {
		t.Error("same seed composed differently")
	}
	c3, err := trace.Compose([]*trace.Scenario{a, b}, trace.ComposeOptions{Seed: 8, Churn: 1})
	if err != nil {
		t.Fatal(err)
	}
	e3 := trace.EncodeJSONL(&trace.Trace{Scenarios: []*trace.Scenario{c3}})
	if bytes.Equal(e1, e3) {
		t.Error("different seeds composed identically (interleave not seeded?)")
	}
}

// A composed scenario must preserve each tenant's event order and
// validate (symbolic refs stay resolvable), and replay cleanly.
func TestComposeStructureAndReplay(t *testing.T) {
	a := recordTiny(t, tinyVecAdd(), sys.AffAlloc, 1)
	b := recordTiny(t, tinyHashJoin(), sys.AffAlloc, 1)
	churn := 1
	c, err := trace.Compose([]*trace.Scenario{a, b}, trace.ComposeOptions{Seed: 3, Churn: churn})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.NumTenants(), 2; got != want {
		t.Fatalf("NumTenants = %d, want %d", got, want)
	}
	if got := len(c.Events); got <= len(a.Events)+len(b.Events) {
		t.Errorf("churned composition has %d events, want > %d", got, len(a.Events)+len(b.Events))
	}
	// Per-tenant subsequences must repeat each input 1+churn times plus
	// injected frees; count allocation events per tenant.
	wantAllocs := []int64{a.AllocCount(0) * int64(1+churn), b.AllocCount(0) * int64(1+churn)}
	for tenant, want := range wantAllocs {
		if got := c.AllocCount(tenant); got != want {
			t.Errorf("tenant %d: %d alloc events, want %d", tenant, got, want)
		}
	}
	res, err := trace.Replay(c, trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("replayed %d tenants, want 2", len(res.Tenants))
	}
	for i, tr := range res.Tenants {
		if tr.Accesses == 0 {
			t.Errorf("tenant %d (%s) replayed no accesses", i, tr.Label)
		}
		if tr.Cycles == 0 {
			t.Errorf("tenant %d (%s) has zero-cycle horizon", i, tr.Label)
		}
	}
	// Replaying the same composition twice is deterministic.
	res2, err := trace.Replay(c, trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.PlacementDump(), res2.PlacementDump()) || res.Cycles != res2.Cycles {
		t.Error("composed replay is not deterministic")
	}
}

// Composing an already-composed scenario is rejected.
func TestComposeRejectsMultiTenantInput(t *testing.T) {
	a := recordTiny(t, tinyVecAdd(), sys.AffAlloc, 1)
	c, err := trace.Compose([]*trace.Scenario{a, trace.NoisyNeighbor(trace.NoiseSpec{})}, trace.ComposeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Compose([]*trace.Scenario{c, a}, trace.ComposeOptions{Seed: 1}); err == nil {
		t.Error("composing a multi-tenant scenario should fail")
	}
}

// The synthetic noisy neighbor is valid, deterministic, and replayable
// both solo and composed with a recorded tenant under faults.
func TestNoisyNeighbor(t *testing.T) {
	n1 := trace.NoisyNeighbor(trace.NoiseSpec{Seed: 5})
	n2 := trace.NoisyNeighbor(trace.NoiseSpec{Seed: 5})
	e1 := trace.EncodeJSONL(&trace.Trace{Scenarios: []*trace.Scenario{n1}})
	e2 := trace.EncodeJSONL(&trace.Trace{Scenarios: []*trace.Scenario{n2}})
	if !bytes.Equal(e1, e2) {
		t.Error("noisy neighbor is not deterministic")
	}
	if err := n1.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Replay(n1, trace.Options{}); err != nil {
		t.Fatalf("solo replay: %v", err)
	}
	a := recordTiny(t, tinyVecAdd(), sys.AffAlloc, 1)
	c, err := trace.Compose([]*trace.Scenario{a, n1}, trace.ComposeOptions{Seed: 2, Churn: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Replay(c, trace.Options{Faults: "dead-banks=2", Shards: 4}); err != nil {
		t.Fatalf("faulted sharded colocation replay: %v", err)
	}
}

package cpu

import (
	"testing"

	"affinityalloc/internal/cache"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/noc"
	"affinityalloc/internal/topo"
)

func newTestCore(t *testing.T, id int) (*Core, *cache.MemSystem, *memsim.Space) {
	t.Helper()
	space := memsim.MustSpace(memsim.DefaultConfig())
	mesh := topo.MustMesh(8, 8, topo.RowMajor)
	net := noc.New(mesh, noc.DefaultConfig())
	mem, err := cache.NewMemSystem(space, net, cache.DefaultMemSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	coh := NewCoherence()
	c, err := NewCore(id, mem, coh, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c, mem, space
}

func heapRegion(t *testing.T, space *memsim.Space, bytes int64) memsim.Addr {
	t.Helper()
	base, err := space.HeapBrk(memsim.Addr(bytes))
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func TestLoadHierarchy(t *testing.T) {
	c, mem, space := newTestCore(t, 0)
	base := heapRegion(t, space, 1<<16)
	mem.Preload(base, 1<<16)

	// First load: L1 and L2 miss, L3 hit.
	t1 := c.Load(base, Dependent)
	if t1 < 20 {
		t.Errorf("first load done at %d, want full L3 round trip", t1)
	}
	// Second load to the same line: L1 hit.
	now := c.Now()
	t2 := c.Load(base+8, Dependent)
	if t2-now > 4 {
		t.Errorf("L1 hit took %d cycles", t2-now)
	}
	if c.Loads != 2 {
		t.Errorf("load count %d", c.Loads)
	}
	if c.L1().Hits != 1 {
		t.Errorf("L1 hits %d", c.L1().Hits)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	c, mem, space := newTestCore(t, 0)
	base := heapRegion(t, space, 1<<20)
	mem.Preload(base, 1<<20)
	// Chase distinct lines far apart: each must pay the full trip.
	var prev, cur uint64
	for i := 0; i < 8; i++ {
		cur = uint64(c.Load(base+memsim.Addr(i*4096), Dependent))
		if i > 0 && cur-prev < 20 {
			t.Fatalf("dependent load %d overlapped (Δ%d)", i, cur-prev)
		}
		prev = cur
	}
}

func TestStreamingLoadsOverlap(t *testing.T) {
	c, mem, space := newTestCore(t, 0)
	base := heapRegion(t, space, 1<<20)
	mem.Preload(base, 1<<20)
	for i := 0; i < 64; i++ {
		c.Load(base+memsim.Addr(i*4096), Streaming)
	}
	// 64 distinct-line streaming loads overlap via the prefetch pool:
	// issue front advances ~1/load, drain fills in the background.
	if c.Now() > 100 {
		t.Errorf("issue front at %d after 64 streaming loads, want ~64", c.Now())
	}
	if c.Drained() < c.Now() {
		t.Error("drain before issue front")
	}
}

func TestAtomicCoherenceTransfer(t *testing.T) {
	space := memsim.MustSpace(memsim.DefaultConfig())
	mesh := topo.MustMesh(8, 8, topo.RowMajor)
	net := noc.New(mesh, noc.DefaultConfig())
	mem, err := cache.NewMemSystem(space, net, cache.DefaultMemSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	coh := NewCoherence()
	c0, _ := NewCore(0, mem, coh, DefaultConfig())
	c63, _ := NewCore(63, mem, coh, DefaultConfig())
	base := heapRegion(t, space, 1<<12)
	mem.Preload(base, 1<<12)

	c0.Atomic(base)
	if coh.Transfers != 0 {
		t.Errorf("first atomic transferred ownership: %d", coh.Transfers)
	}
	// Re-atomics by the same core stay local.
	before := c0.Now()
	c0.Atomic(base)
	if c0.Now()-before > 30 {
		t.Errorf("owned re-atomic took %d cycles", c0.Now()-before)
	}
	// A different core must pay the coherence round trip.
	start := c63.Now()
	c63.Atomic(base)
	if coh.Transfers != 1 {
		t.Errorf("transfers %d, want 1", coh.Transfers)
	}
	if c63.Now()-start < 20 {
		t.Errorf("contended atomic took only %d cycles", c63.Now()-start)
	}
	if c63.Atomics != 1 {
		t.Errorf("atomic count %d", c63.Atomics)
	}
}

func TestComputeAdvancesIssueWidth(t *testing.T) {
	c, _, _ := newTestCore(t, 0)
	c.Compute(16) // 16 ops over 8-wide issue = 2 cycles
	if c.Now() != 2 {
		t.Errorf("Now = %d after 16 scalar ops, want 2", c.Now())
	}
	c.ComputeSIMD(64) // 64 elems over 16 lanes = 4 ops
	if c.Now() != 6 {
		t.Errorf("Now = %d after SIMD, want 6", c.Now())
	}
	if c.ALUOps != 16 || c.SIMDOps != 4 {
		t.Errorf("op counts %d/%d", c.ALUOps, c.SIMDOps)
	}
	c.Compute(0)
	if c.Now() != 6 {
		t.Error("zero-op compute advanced time")
	}
}

func TestSetNowForwardOnly(t *testing.T) {
	c, _, _ := newTestCore(t, 0)
	c.SetNow(100)
	c.SetNow(50)
	if c.Now() != 100 {
		t.Errorf("Now = %d, want 100", c.Now())
	}
	if c.Drained() < 100 {
		t.Error("Drained below Now")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c, mem, space := newTestCore(t, 0)
	base := heapRegion(t, space, 1<<22)
	mem.Preload(base, 1<<22)
	// Write far more lines than L2 holds; dirty victims must reach L3.
	for i := 0; i < 3*4096; i++ {
		c.Store(base+memsim.Addr(i*64), Streaming)
	}
	if c.Stores != 3*4096 {
		t.Errorf("stores %d", c.Stores)
	}
	acc, _, _ := mem.TotalL3Stats()
	// Every line missed L2 once (fill) and most dirty lines wrote back.
	if acc < 4*4096 {
		t.Errorf("only %d L3 accesses — writebacks missing", acc)
	}
}

// Package cpu models conventional in-core execution — the paper's
// "In-Core" baseline where no computation is offloaded. Each core has
// private L1/L2 caches, a bounded pool of outstanding misses (MSHRs), and
// a prefetcher model for streaming accesses; atomics pay directory
// coherence costs. Timing separates cleanly from function: workloads read
// and write values through memsim directly and report each access to a
// Core, which accounts cycles, cache state, and NoC traffic.
package cpu

import (
	"fmt"

	"affinityalloc/internal/cache"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/noc"
)

// AccessKind tells the timing model how an access behaves in an OOO core.
type AccessKind int

const (
	// Streaming accesses follow an affine pattern the L1/L2 prefetchers
	// capture (Table 2: Bingo + stride); their latency is hidden up to
	// the prefetch depth, leaving bandwidth as the limit.
	Streaming AccessKind = iota
	// Irregular accesses (indirect, hashed) overlap only up to the MSHR
	// count.
	Irregular
	// Dependent accesses serialize against program order — pointer
	// chasing, where the next address needs the previous value.
	Dependent
)

// Config parameterizes a core; defaults mirror Table 2's 8-issue OOO CPU.
type Config struct {
	L1SizeBytes  int
	L1Ways       int
	L1HitLatency engine.Time
	L2SizeBytes  int
	L2Ways       int
	L2HitLatency engine.Time
	MSHRs        int // outstanding irregular misses
	PrefetchDeep int // outstanding streaming fills (prefetcher depth)
	IssueMemOps  int // memory ops issued per cycle
	IssueALUOps  int // scalar ALU ops per cycle
	SIMDLanes    int // elements per SIMD op (AVX-512: 16 floats)
}

// DefaultConfig mirrors Table 2.
func DefaultConfig() Config {
	return Config{
		L1SizeBytes:  32 << 10,
		L1Ways:       8,
		L1HitLatency: 2,
		L2SizeBytes:  256 << 10,
		L2Ways:       16,
		L2HitLatency: 16,
		MSHRs:        16,
		PrefetchDeep: 48,
		IssueMemOps:  2,
		IssueALUOps:  8,
		SIMDLanes:    16,
	}
}

// Coherence tracks which core's private cache owns each line in modified
// state, charging directory round-trips when ownership migrates — the
// coherence misses that make contended in-core atomics expensive (§7.2).
type Coherence struct {
	owner map[uint64]int // line -> core id holding it modified

	// Transfers counts ownership migrations (coherence misses).
	Transfers uint64
}

// NewCoherence builds an empty directory.
func NewCoherence() *Coherence {
	return &Coherence{owner: make(map[uint64]int)}
}

// acquire records that core takes the line modified, reporting the
// previous owner if the line migrates.
func (d *Coherence) acquire(line uint64, core int) (prevOwner int, migrated bool) {
	prev, ok := d.owner[line]
	d.owner[line] = core
	if ok && prev != core {
		d.Transfers++
		return prev, true
	}
	return 0, false
}

// Core is one tile's in-order-retire, out-of-order-issue execution model.
type Core struct {
	id   int
	cfg  Config
	mem  *cache.MemSystem
	coh  *Coherence
	l1   *cache.SetAssoc
	l2   *cache.SetAssoc
	now  engine.Time
	done engine.Time // completion of the latest-finishing access

	// slotsIrr and slotsStream model MSHR and prefetch-depth occupancy:
	// each entry is the cycle that slot frees.
	slotsIrr    []engine.Time
	slotsStream []engine.Time

	// Counters for the energy model and reports.
	Loads, Stores, Atomics, ALUOps, SIMDOps uint64
}

// NewCore builds a core on tile id, sharing the memory system and
// coherence directory with its peers.
func NewCore(id int, mem *cache.MemSystem, coh *Coherence, cfg Config) (*Core, error) {
	l1, err := cache.NewSetAssoc(cfg.L1SizeBytes, cfg.L1Ways, cache.LRU)
	if err != nil {
		return nil, fmt.Errorf("cpu: L1: %w", err)
	}
	l2, err := cache.NewSetAssoc(cfg.L2SizeBytes, cfg.L2Ways, cache.LRU)
	if err != nil {
		return nil, fmt.Errorf("cpu: L2: %w", err)
	}
	return &Core{
		id:          id,
		cfg:         cfg,
		mem:         mem,
		coh:         coh,
		l1:          l1,
		l2:          l2,
		slotsIrr:    make([]engine.Time, cfg.MSHRs),
		slotsStream: make([]engine.Time, cfg.PrefetchDeep),
	}, nil
}

// ID returns the core's tile index.
func (c *Core) ID() int { return c.id }

// Now returns the core's issue-front cycle.
func (c *Core) Now() engine.Time { return c.now }

// SetNow fast-forwards the core (used when a core starts a parallel
// region late, e.g. after a barrier).
func (c *Core) SetNow(t engine.Time) {
	if t > c.now {
		c.now = t
	}
	if t > c.done {
		c.done = t
	}
}

// Drained returns the cycle when every outstanding access has completed —
// the core's finish time for a kernel.
func (c *Core) Drained() engine.Time {
	t := engine.MaxTime(c.now, c.done)
	for _, s := range c.slotsIrr {
		t = engine.MaxTime(t, s)
	}
	for _, s := range c.slotsStream {
		t = engine.MaxTime(t, s)
	}
	return t
}

// L1 exposes the L1 tag array for statistics.
func (c *Core) L1() *cache.SetAssoc { return c.l1 }

// L2 exposes the L2 tag array for statistics.
func (c *Core) L2() *cache.SetAssoc { return c.l2 }

// claimSlot picks the earliest-free slot in pool, occupies it until
// release, and returns the earliest start cycle.
func claimSlot(pool []engine.Time, earliest engine.Time) (idx int, start engine.Time) {
	best := 0
	for i, t := range pool {
		if t < pool[best] {
			best = i
		}
	}
	return best, engine.MaxTime(earliest, pool[best])
}

// access runs one load or store through the hierarchy and returns its
// completion cycle.
func (c *Core) access(va memsim.Addr, write bool, kind AccessKind) engine.Time {
	if write {
		c.Stores++
	} else {
		c.Loads++
	}
	line := uint64(memsim.Line(va))

	// L1.
	if hit, _, _ := c.l1.Access(line, write); hit {
		t := c.now + c.cfg.L1HitLatency
		c.issue1()
		return t
	}
	// L2 (fills on miss; capture the victim from this same call). The L1
	// access above already filled the line there.
	l2hit, victim, dirtyVictim := c.l2.Access(line, write)
	if l2hit {
		t := c.now + c.cfg.L2HitLatency
		c.issue1()
		return t
	}
	// L2 miss: go to the home L3 bank over the NoC.
	pool := c.slotsIrr
	if kind == Streaming {
		pool = c.slotsStream
	}
	idx, start := claimSlot(pool, c.now)
	net := c.mem.Net()
	bank := c.mem.BankOf(va)
	reqArrive := net.Send(start, c.id, bank, noc.Control, 8)
	fillDone, _ := c.mem.AccessAt(reqArrive, bank, va, write)
	respArrive := net.Send(fillDone, bank, c.id, noc.Data, memsim.LineSize)
	pool[idx] = respArrive
	if respArrive > c.done {
		c.done = respArrive
	}

	// A dirty L2 victim writes back to its own home bank.
	if dirtyVictim {
		vAddr := memsim.Addr(victim) * memsim.LineSize
		vBank := c.mem.BankOf(vAddr)
		wbArrive := net.Send(respArrive, c.id, vBank, noc.Data, memsim.LineSize)
		c.mem.AccessAt(wbArrive, vBank, vAddr, true)
	}

	c.issue1()
	if kind == Streaming {
		// The prefetcher hid the latency; the core sees an L1 hit, but
		// only after the bandwidth-limited fill slot it consumed.
		t := c.now + c.cfg.L1HitLatency
		return engine.MaxTime(t, start+c.cfg.L1HitLatency)
	}
	return respArrive
}

// issue1 charges one memory-issue cycle to the core front.
func (c *Core) issue1() {
	c.now++
}

// Load models a read of the line containing va. For Dependent kinds the
// core stalls until the value returns; otherwise only issue bandwidth and
// slot occupancy are charged.
func (c *Core) Load(va memsim.Addr, kind AccessKind) engine.Time {
	t := c.access(va, false, kind)
	if kind == Dependent {
		c.now = engine.MaxTime(c.now, t)
	}
	return t
}

// Store models a write to the line containing va.
func (c *Core) Store(va memsim.Addr, kind AccessKind) engine.Time {
	return c.access(va, true, kind)
}

// Atomic models an atomic read-modify-write (CAS, fetch-add). It acquires
// line ownership through the directory: if another core held the line
// modified, the access pays an invalidation round-trip through the home
// bank and transfers the line — the in-core contention cost of §7.2.
func (c *Core) Atomic(va memsim.Addr) engine.Time {
	c.Atomics++
	line := uint64(memsim.Line(va))
	net := c.mem.Net()
	start := c.now

	if prev, migrated := c.coh.acquire(line, c.id); migrated {
		// Invalidate the previous owner via the home bank and pull the
		// line: requester -> home (Control), home -> owner (Control),
		// owner -> requester (Data).
		bank := c.mem.BankOf(va)
		t := net.Send(start, c.id, bank, noc.Control, 8)
		t = net.Send(t, bank, prev, noc.Control, 8)
		t = net.Send(t, prev, c.id, noc.Data, memsim.LineSize)
		c.l1.Access(line, true)
		c.l2.Access(line, true)
		c.now = engine.MaxTime(c.now, t) + c.cfg.L1HitLatency
		if c.now > c.done {
			c.done = c.now
		}
		return c.now
	}
	// Unowned or already ours: a normal (dependent) RMW.
	t := c.access(va, true, Dependent)
	c.now = engine.MaxTime(c.now, t)
	return c.now
}

// Compute charges scalar ALU work (ops retired across the issue width).
func (c *Core) Compute(ops int) {
	if ops <= 0 {
		return
	}
	c.ALUOps += uint64(ops)
	c.now += engine.Time((ops + c.cfg.IssueALUOps - 1) / c.cfg.IssueALUOps)
}

// ComputeSIMD charges vector work on `elems` elements.
func (c *Core) ComputeSIMD(elems int) {
	if elems <= 0 {
		return
	}
	simdOps := (elems + c.cfg.SIMDLanes - 1) / c.cfg.SIMDLanes
	c.SIMDOps += uint64(simdOps)
	c.now += engine.Time(simdOps)
}

package cpu

import (
	"affinityalloc/internal/engine"
	"affinityalloc/internal/telemetry"
)

// PublishCores publishes per-core activity series into the registry:
// memory-op and compute-op counts, private-cache access/miss balance, and
// active cycles (the drain time clamped to the run's finish, counted only
// for cores that did any work — the same definition the energy model's
// CoreActiveCycles uses).
func PublishCores(r *telemetry.Registry, cores []*Core, finish engine.Time) {
	n := len(cores)
	series := map[string][]uint64{
		"core_loads":         make([]uint64, n),
		"core_stores":        make([]uint64, n),
		"core_atomics":       make([]uint64, n),
		"core_alu_ops":       make([]uint64, n),
		"core_simd_ops":      make([]uint64, n),
		"core_active_cycles": make([]uint64, n),
		"core_l1_accesses":   make([]uint64, n),
		"core_l1_misses":     make([]uint64, n),
		"core_l2_accesses":   make([]uint64, n),
		"core_l2_misses":     make([]uint64, n),
	}
	for i, c := range cores {
		series["core_loads"][i] = c.Loads
		series["core_stores"][i] = c.Stores
		series["core_atomics"][i] = c.Atomics
		series["core_alu_ops"][i] = c.ALUOps
		series["core_simd_ops"][i] = c.SIMDOps
		if c.Loads+c.Stores+c.Atomics+c.ALUOps+c.SIMDOps > 0 {
			active := c.Drained()
			if active > finish {
				active = finish
			}
			series["core_active_cycles"][i] = uint64(active)
		}
		series["core_l1_accesses"][i] = c.L1().Accesses
		series["core_l1_misses"][i] = c.L1().Misses
		series["core_l2_accesses"][i] = c.L2().Accesses
		series["core_l2_misses"][i] = c.L2().Misses
	}
	// Fixed publication order (map iteration must not leak into the
	// registry's scalar bookkeeping — SetSeries also writes *_total).
	for _, name := range []string{
		"core_loads", "core_stores", "core_atomics", "core_alu_ops",
		"core_simd_ops", "core_active_cycles",
		"core_l1_accesses", "core_l1_misses",
		"core_l2_accesses", "core_l2_misses",
	} {
		r.SetSeries(name, series[name])
	}
}

package telemetry

import (
	"bytes"
	"testing"
)

// FuzzParseDocument throws arbitrary bytes at the metrics-document
// decoder. Two properties must hold: the parser never panics, and any
// document it accepts survives a WriteJSON round trip (re-encoding an
// accepted document re-parses and re-validates to the same bytes).
func FuzzParseDocument(f *testing.F) {
	// Seed corpus: a well-formed document (built by the real encoder so
	// the corpus tracks the schema), then targeted mutations of it.
	valid := func() []byte {
		d := &Document{SchemaVersion: SchemaVersion, Experiment: "fig4", Scale: "tiny", Seed: 1}
		r := NewRegistry()
		r.Add("cycles", 100)
		r.Add("flit_hops", 7)
		d.AddCell("vecadd/In-Core", r.Snapshot())
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema_version":1,"seed":0,"cells":[]}`))
	f.Add([]byte(`{"schema_version":99,"seed":0,"cells":[{"label":"x","scalars":{"cycles":1}}]}`))
	f.Add([]byte(`{"schema_version":1,"seed":0,"cells":[{"label":"","scalars":{"cycles":1}}]}`))
	f.Add([]byte(`{"schema_version":1,"seed":0,"cells":[{"label":"x","scalars":{}}]}`))
	f.Add([]byte(`{"schema_version":1,"seed":0,"cells":[{"label":"x","scalars":{"cycles":1,"q_total":5},"series":{"q":[2,2]}}]}`))
	f.Add([]byte(`{"schema_version":1,"seed":`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ParseDocument(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted document does not re-encode: %v", err)
		}
		d2, err := ParseDocument(buf.Bytes())
		if err != nil {
			t.Fatalf("re-encoded document rejected: %v\n%s", err, buf.Bytes())
		}
		var buf2 bytes.Buffer
		if err := d2.WriteJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("encode/parse/encode is not a fixed point:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
		}
	})
}

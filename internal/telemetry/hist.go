package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of a Hist. Bucket i counts
// samples v with 2^i <= v < 2^(i+1) (bucket 0 also takes 0 and 1); the
// last bucket absorbs everything larger. With nanosecond samples the
// range spans 1ns to ~9 minutes, which covers any plausible placement
// latency.
const HistBuckets = 40

// Hist is a concurrency-safe power-of-two histogram for latency-style
// samples. Unlike Registry it is written on hot paths by many
// goroutines, so every bucket is an independent atomic counter;
// observation is one CompareAndSwap-free atomic add. The zero value is
// ready to use.
type Hist struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// histBucket returns the bucket index for a sample.
func histBucket(v uint64) int {
	if v < 2 {
		return 0
	}
	b := bits.Len64(v) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one sample.
func (h *Hist) Observe(v uint64) {
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded samples.
func (h *Hist) Sum() uint64 { return h.sum.Load() }

// Counts returns a snapshot of the per-bucket counts. Concurrent
// observers may land between bucket loads; the snapshot is a consistent
// lower bound, exact once observation has quiesced.
func (h *Hist) Counts() []uint64 {
	out := make([]uint64, HistBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile returns the q-quantile (0 < q <= 1) of the recorded samples,
// interpolated within the winning power-of-two bucket; 0 with no samples.
func (h *Hist) Quantile(q float64) uint64 {
	return HistQuantile(h.Counts(), q)
}

// HistQuantile computes a quantile from an exported bucket-count series
// (len HistBuckets, or any prefix) laid out as Hist lays buckets out.
// This is what consumers of a metrics Document use to derive p50/p99
// from the published series without access to the live histogram.
func HistQuantile(counts []uint64, q float64) uint64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			// Interpolate linearly inside the bucket [lo, hi).
			lo := uint64(0)
			if i > 0 {
				lo = uint64(1) << uint(i)
			}
			hi := uint64(1) << uint(i+1)
			frac := float64(rank-cum) / float64(c)
			return lo + uint64(frac*float64(hi-lo))
		}
		cum += c
	}
	return uint64(1) << uint(len(counts)) // unreachable for consistent input
}

// Publish exports the histogram into a registry under name: the bucket
// counts as a series (SetSeries also writes name+"_total", the sample
// count) plus name+"_sum" for mean derivation. Like every registry
// publisher it runs at collection time, off the hot path.
func (h *Hist) Publish(r *Registry, name string) {
	r.SetSeries(name, h.Counts())
	r.Set(name+"_sum", h.Sum())
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func goldenSpans() ([]Span, []string, map[string]string) {
	spans := []Span{
		{Name: "bfs iter 0 (push)", Cat: "bfs", TID: 0, Start: 0, Dur: 1200},
		{Name: "bfs iter 1 (pull)", Cat: "bfs", TID: 0, Start: 1200, Dur: 800},
		{Name: "bfs iter 0 (push)", Cat: "bfs", TID: 1, Start: 0, Dur: 640},
	}
	threads := []string{"fig12/bfs/Near-L3", "fig12/bfs/Aff-Alloc"}
	meta := map[string]string{"experiment": "fig12", "scale": "tiny", "seed": "1"}
	return spans, threads, meta
}

// TestWriteTraceGolden pins the exact byte stream of the Chrome trace
// exporter: the trace_event format is consumed by external tools
// (chrome://tracing, Perfetto), so accidental format drift must fail
// loudly. Refresh with `go test ./internal/telemetry -run Golden -update`.
func TestWriteTraceGolden(t *testing.T) {
	spans, threads, meta := goldenSpans()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, spans, nil, threads, meta); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace export drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWriteTraceShape checks the structural invariants any trace_event
// consumer relies on: one metadata event per named thread, one complete
// ("X") event per span, one thread-scoped instant ("i") event per
// instant, all on pid 0.
func TestWriteTraceShape(t *testing.T) {
	spans, threads, meta := goldenSpans()
	instants := []Instant{
		{Name: "flit_drop", Cat: "fault", TID: 1, TS: 512},
		{Name: "dead_bank", Cat: "fault", TID: 1, TS: 0},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, spans, instants, threads, meta); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		Metadata    map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var x, m, i int
	for _, ev := range doc.TraceEvents {
		if pid, _ := ev["pid"].(float64); pid != 0 {
			t.Errorf("event on pid %v, want 0", ev["pid"])
		}
		switch ev["ph"] {
		case "X":
			x++
		case "M":
			m++
		case "i":
			i++
			if ev["s"] != "t" {
				t.Errorf("instant event scope %v, want t", ev["s"])
			}
		}
	}
	if x != len(spans) || m != len(threads) || i != len(instants) {
		t.Errorf("got %d X, %d M, %d i events, want %d, %d and %d", x, m, i, len(spans), len(threads), len(instants))
	}
	if doc.Metadata["experiment"] != "fig12" {
		t.Errorf("metadata lost: %v", doc.Metadata)
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRegistryScalars(t *testing.T) {
	r := NewRegistry()
	r.Add("hits", 3)
	r.Add("hits", 4)
	r.Set("cycles", 100)
	r.Set("cycles", 200)
	s := r.Snapshot()
	if s.Scalar("hits") != 7 {
		t.Errorf("hits = %d, want 7", s.Scalar("hits"))
	}
	if s.Scalar("cycles") != 200 {
		t.Errorf("cycles = %d, want 200 (last write wins)", s.Scalar("cycles"))
	}
	if s.Scalar("absent") != 0 {
		t.Error("absent scalar should read 0")
	}
}

func TestSetSeriesWritesTotal(t *testing.T) {
	r := NewRegistry()
	vals := []uint64{1, 2, 3, 4}
	r.SetSeries("l3_bank_accesses", vals)
	vals[0] = 99 // the registry must have copied
	s := r.Snapshot()
	if got := s.SeriesOf("l3_bank_accesses"); got[0] != 1 {
		t.Errorf("series[0] = %d; SetSeries must copy its input", got[0])
	}
	if got := s.Scalar("l3_bank_accesses_total"); got != 10 {
		t.Errorf("derived total = %d, want 10", got)
	}
}

func TestNilSnapshotAccessors(t *testing.T) {
	var s *Snapshot
	if s.Scalar("x") != 0 || s.SeriesOf("x") != nil {
		t.Error("nil snapshot accessors must be safe")
	}
}

func TestSummarize(t *testing.T) {
	sm := Summarize([]uint64{0, 2, 4, 10})
	if sm.Sum != 16 || sm.Max != 10 || sm.Mean != 4 || sm.Imbalance != 2.5 {
		t.Errorf("summary = %+v", sm)
	}
	if z := Summarize(nil); z.Imbalance != 0 || z.Sum != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

// TestSnapshotJSONDeterministic: two marshals of the same snapshot are
// byte-identical (map keys sort), the property the metrics document
// byte-identity guarantee rests on.
func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, k := range []string{"zeta", "alpha", "mid", "beta"} {
		r.Add(k, 1)
	}
	r.SetSeries("series_b", []uint64{1, 2})
	r.SetSeries("series_a", []uint64{3})
	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(r.Snapshot())
	if !bytes.Equal(a, b) {
		t.Error("snapshot JSON is not deterministic")
	}
	var decoded Snapshot
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Scalars["series_a_total"] != 3 {
		t.Error("round-trip lost the derived total")
	}
}

func docWithCell() *Document {
	r := NewRegistry()
	r.Set("cycles", 42)
	r.SetSeries("l3_bank_accesses", []uint64{5, 7})
	d := &Document{SchemaVersion: SchemaVersion, Experiment: "test", Scale: "tiny", Seed: 1}
	d.AddCell("w/mode", r.Snapshot())
	return d
}

func TestDocumentRoundTrip(t *testing.T) {
	d := docWithCell()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseDocument(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cells[0].Label != "w/mode" || got.Cells[0].Scalars["cycles"] != 42 {
		t.Errorf("round trip lost cell data: %+v", got.Cells[0])
	}
}

func TestDocumentValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Document)
	}{
		{"schema version", func(d *Document) { d.SchemaVersion = 99 }},
		{"no cells", func(d *Document) { d.Cells = nil }},
		{"empty label", func(d *Document) { d.Cells[0].Label = "" }},
		{"missing cycles", func(d *Document) { delete(d.Cells[0].Scalars, "cycles") }},
		{"series/total mismatch", func(d *Document) { d.Cells[0].Scalars["l3_bank_accesses_total"] = 1 }},
		{"empty series", func(d *Document) { d.Cells[0].Series["empty"] = nil }},
	}
	for _, tc := range cases {
		d := docWithCell()
		tc.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken document", tc.name)
		}
	}
	if err := docWithCell().Validate(); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

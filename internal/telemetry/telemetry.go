// Package telemetry is the observability substrate of the simulator: a
// lightweight registry of named counters and fixed-length series that the
// simulation components (noc.Network, cache.MemSystem, stream.Engine,
// cpu.Core) publish into at collection time, plus two exporters — a
// stable snake_case JSON metrics document and a Chrome trace_event JSON
// timeline of sim-time phases.
//
// The paper's argument rests on *where* traffic flows (per-link NoC hop
// heatmaps, per-bank access balance — Figs 5, 6, 12), so the registry
// keeps per-tile detail, not just whole-run aggregates. Everything stored
// is a raw count; rates and ratios are always derived by consumers, so
// two exports of the same run are byte-identical and diffable.
//
// Naming convention: all keys are stable snake_case identifiers, e.g.
// "l3_bank_accesses" (a per-bank series) or "noc_data_flit_hops" (a
// scalar). Series lengths are fixed by the topology (banks, links, DRAM
// channels, cores).
package telemetry

import "sort"

// Span is one sim-time phase for the trace exporter: a named interval in
// cycles. TID groups spans onto one timeline row; exporters may reassign
// it (e.g. one row per simulation cell).
type Span struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	TID   int    `json:"tid"`
	Start uint64 `json:"start"`
	Dur   uint64 `json:"dur"`
}

// Instant is one point event for the trace exporter — a fault occurrence,
// a watchdog trip — rendered as a Chrome "i" (instant) event at TS.
type Instant struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	TID  int    `json:"tid"`
	TS   uint64 `json:"ts"`
}

// Snapshot is one run's telemetry: scalar counters plus fixed-length
// series, keyed by stable snake_case names, and the recorded phase spans
// and instants. It marshals deterministically (encoding/json sorts map
// keys).
type Snapshot struct {
	Scalars  map[string]uint64   `json:"scalars"`
	Series   map[string][]uint64 `json:"series,omitempty"`
	Spans    []Span              `json:"-"`
	Instants []Instant           `json:"-"`
}

// Registry accumulates counters, series and spans during collection.
// It is not safe for concurrent use; each simulated system owns one.
type Registry struct {
	snap Snapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{snap: Snapshot{
		Scalars: make(map[string]uint64),
		Series:  make(map[string][]uint64),
	}}
}

// Add accumulates delta into the named scalar counter.
func (r *Registry) Add(name string, delta uint64) {
	r.snap.Scalars[name] += delta
}

// Set stores an absolute scalar value (last write wins).
func (r *Registry) Set(name string, v uint64) {
	r.snap.Scalars[name] = v
}

// SetSeries stores a copy of vals as the named series and accumulates its
// sum into the scalar of the same name suffixed "_total", so aggregate
// consumers never re-sum.
func (r *Registry) SetSeries(name string, vals []uint64) {
	cp := make([]uint64, len(vals))
	copy(cp, vals)
	r.snap.Series[name] = cp
	var sum uint64
	for _, v := range vals {
		sum += v
	}
	r.snap.Scalars[name+"_total"] = sum
}

// AddSpan records one phase span.
func (r *Registry) AddSpan(s Span) {
	r.snap.Spans = append(r.snap.Spans, s)
}

// AddInstant records one point event.
func (r *Registry) AddInstant(i Instant) {
	r.snap.Instants = append(r.snap.Instants, i)
}

// Snapshot returns the accumulated state. The returned snapshot shares no
// mutable state with future registry writes for already-set series (they
// were copied in), but callers should treat it as read-only.
func (r *Registry) Snapshot() *Snapshot {
	s := r.snap
	return &s
}

// Publisher is implemented by simulation components that can publish
// their counters into a registry.
type Publisher interface {
	PublishTelemetry(r *Registry)
}

// Scalar returns the named scalar counter (zero if absent).
func (s *Snapshot) Scalar(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.Scalars[name]
}

// SeriesOf returns the named series (nil if absent).
func (s *Snapshot) SeriesOf(name string) []uint64 {
	if s == nil {
		return nil
	}
	return s.Series[name]
}

// ScalarNames returns the sorted scalar keys.
func (s *Snapshot) ScalarNames() []string {
	names := make([]string, 0, len(s.Scalars))
	for k := range s.Scalars {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SeriesNames returns the sorted series keys.
func (s *Snapshot) SeriesNames() []string {
	names := make([]string, 0, len(s.Series))
	for k := range s.Series {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SeriesSummary describes the shape of one series — the load-balance view
// the paper's per-bank figures are about. All values are derived on call,
// never stored.
type SeriesSummary struct {
	Sum, Max uint64
	Mean     float64
	// Imbalance is max/mean (1.0 = perfectly balanced); 0 for an empty or
	// all-zero series.
	Imbalance float64
}

// Summarize computes the summary of a series.
func Summarize(vals []uint64) SeriesSummary {
	var s SeriesSummary
	if len(vals) == 0 {
		return s
	}
	for _, v := range vals {
		s.Sum += v
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = float64(s.Sum) / float64(len(vals))
	if s.Mean > 0 {
		s.Imbalance = float64(s.Max) / s.Mean
	}
	return s
}

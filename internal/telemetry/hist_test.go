package telemetry

import (
	"sync"
	"testing"
)

func TestHistBucketing(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1 << 20, 20}, {1<<40 - 1, 39}, {1 << 45, HistBuckets - 1}, {^uint64(0), HistBuckets - 1},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistObserveAndQuantile(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 100 samples in [64, 128): every quantile lands in bucket 6.
	for i := 0; i < 100; i++ {
		h.Observe(64 + uint64(i)%64)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		v := h.Quantile(q)
		if v < 64 || v > 128 {
			t.Errorf("q%.2f = %d, outside sample bucket [64,128]", q, v)
		}
	}
	// Quantiles are monotone in q.
	if h.Quantile(0.99) < h.Quantile(0.5) {
		t.Error("p99 < p50")
	}
}

func TestHistQuantileSkew(t *testing.T) {
	// 99 fast samples (~16ns) and 1 slow (~1<<30): p50 stays in the fast
	// bucket, p100 reaches the slow one.
	var h Hist
	for i := 0; i < 99; i++ {
		h.Observe(16)
	}
	h.Observe(1 << 30)
	if p50 := h.Quantile(0.50); p50 < 16 || p50 >= 32 {
		t.Errorf("p50 = %d, want within [16,32)", p50)
	}
	if p100 := h.Quantile(1); p100 < 1<<30 {
		t.Errorf("p100 = %d, want >= 2^30", p100)
	}
}

func TestHistConcurrentObserve(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	var total uint64
	for _, c := range h.Counts() {
		total += c
	}
	if total != workers*per {
		t.Errorf("bucket sum = %d, want %d", total, workers*per)
	}
}

func TestHistPublishRoundTrip(t *testing.T) {
	var h Hist
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	r := NewRegistry()
	r.Set("cycles", 1)
	h.Publish(r, "lat_ns")
	snap := r.Snapshot()

	doc := &Document{SchemaVersion: SchemaVersion, Experiment: "hist-test", Scale: "tiny", Seed: 1}
	doc.AddCell("cell", snap)
	if err := doc.Validate(); err != nil {
		t.Fatalf("published histogram fails document validation: %v", err)
	}
	counts := snap.Series["lat_ns"]
	// The exported series must reproduce the live quantiles exactly.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if HistQuantile(counts, q) != h.Quantile(q) {
			t.Errorf("q%.2f differs between live hist and exported series", q)
		}
	}
	if snap.Scalars["lat_ns_total"] != h.Count() {
		t.Errorf("_total = %d, want %d", snap.Scalars["lat_ns_total"], h.Count())
	}
	if snap.Scalars["lat_ns_sum"] != h.Sum() {
		t.Errorf("_sum = %d, want %d", snap.Scalars["lat_ns_sum"], h.Sum())
	}
}

package telemetry

import (
	"encoding/json"
	"io"
)

// traceEvent is one Chrome trace_event entry. The simulator maps one
// simulated cycle to one microsecond of trace time (the viewer's native
// unit), so a span of N cycles renders N µs wide; absolute wall time is
// meaningless for a discrete-event run anyway.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   uint64            `json:"ts"`
	Dur  uint64            `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant-event scope
	Args map[string]string `json:"args,omitempty"`
}

// traceDoc is the trace_event container format understood by
// chrome://tracing and Perfetto.
type traceDoc struct {
	TraceEvents []traceEvent      `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// WriteTrace writes spans and instants as a Chrome trace_event JSON
// document (load it in chrome://tracing or https://ui.perfetto.dev).
// Spans become complete ("X") events and instants thread-scoped point
// ("i") events, each kind keeping its input order; the byte stream
// depends only on the inputs, so exports are reproducible. All events
// share pid 0 — rows are distinguished by TID, and threadNames[i] (when
// set) labels row i via a thread_name metadata event.
func WriteTrace(w io.Writer, spans []Span, instants []Instant, threadNames []string, metadata map[string]string) error {
	doc := traceDoc{TraceEvents: make([]traceEvent, 0, len(spans)+len(instants)+len(threadNames)), Metadata: metadata}
	for tid, name := range threadNames {
		if name == "" {
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: tid,
			Args: map[string]string{"name": name},
		})
	}
	for _, s := range spans {
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: s.Start, Dur: s.Dur, PID: 0, TID: s.TID,
		})
	}
	for _, in := range instants {
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: in.Name, Cat: in.Cat, Ph: "i",
			TS: in.TS, PID: 0, TID: in.TID, S: "t",
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

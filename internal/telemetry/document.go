package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion identifies the metrics-document layout. Bump only on
// incompatible changes; additions of new counter names are compatible.
const SchemaVersion = 1

// Cell is one simulation cell's telemetry in a Document: a (workload ×
// configuration) run, labeled as the harness labels its cells.
type Cell struct {
	Label   string              `json:"label"`
	Scalars map[string]uint64   `json:"scalars"`
	Series  map[string][]uint64 `json:"series,omitempty"`
}

// Document is the stable machine-readable metrics file written by
// `affsim -metrics-out` / `afftables -metrics-out`. Cells appear in a
// fixed harness order, so the file is byte-identical for any -j.
type Document struct {
	SchemaVersion int    `json:"schema_version"`
	Experiment    string `json:"experiment,omitempty"`
	Scale         string `json:"scale,omitempty"`
	Seed          int64  `json:"seed"`
	Cells         []Cell `json:"cells"`
}

// AddCell appends a snapshot as a labeled cell.
func (d *Document) AddCell(label string, s *Snapshot) {
	c := Cell{Label: label}
	if s != nil {
		c.Scalars = s.Scalars
		c.Series = s.Series
	}
	d.Cells = append(d.Cells, c)
}

// WriteJSON writes the document as deterministic, indented JSON.
// encoding/json sorts map keys, so the byte stream depends only on the
// document contents, never on map iteration or goroutine scheduling.
func (d *Document) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ParseDocument decodes and validates a metrics document.
func ParseDocument(data []byte) (*Document, error) {
	var d Document
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("telemetry: metrics document does not parse: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks the document against the exported schema: a known
// schema version, non-empty uniquely-ordered cell labels, a "cycles"
// scalar per cell, and internally consistent series (every series under
// one per-category name has one fixed length).
func (d *Document) Validate() error {
	if d.SchemaVersion != SchemaVersion {
		return fmt.Errorf("telemetry: schema_version %d, this build reads %d", d.SchemaVersion, SchemaVersion)
	}
	if len(d.Cells) == 0 {
		return fmt.Errorf("telemetry: document has no cells")
	}
	for i, c := range d.Cells {
		if c.Label == "" {
			return fmt.Errorf("telemetry: cell %d has an empty label", i)
		}
		if _, ok := c.Scalars["cycles"]; !ok {
			return fmt.Errorf("telemetry: cell %q has no cycles scalar", c.Label)
		}
		for name, vals := range c.Series {
			if len(vals) == 0 {
				return fmt.Errorf("telemetry: cell %q series %q is empty", c.Label, name)
			}
			if got, want := c.Scalars[name+"_total"], sumU64(vals); got != want {
				return fmt.Errorf("telemetry: cell %q series %q sums to %d but %s_total is %d",
					c.Label, name, want, name, got)
			}
		}
	}
	return nil
}

func sumU64(vals []uint64) uint64 {
	var s uint64
	for _, v := range vals {
		s += v
	}
	return s
}

package faults

import (
	"strings"
	"testing"
)

func TestParseEmpty(t *testing.T) {
	s, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Fatalf("empty string parsed to non-empty spec %+v", s)
	}
	if got := s.String(); got != "none" {
		t.Fatalf("empty spec renders %q, want none", got)
	}
}

func TestParseFullGrammar(t *testing.T) {
	in := "seed=7,dead-bank=3,dead-banks=2,dead-links=4,dead-link=1>2,drop-link=5>6:0.25,dram-slow=0:2.5,dram-blackout=1:10/100"
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || s.NDeadBanks != 2 || s.NDeadLinks != 4 {
		t.Fatalf("scalar clauses: %+v", s)
	}
	if len(s.DeadBanks) != 1 || s.DeadBanks[0] != 3 {
		t.Fatalf("dead banks %v", s.DeadBanks)
	}
	if len(s.Links) != 2 || !s.Links[0].Dead || s.Links[1].Drop != 0.25 {
		t.Fatalf("links %+v", s.Links)
	}
	if len(s.DRAM) != 2 {
		t.Fatalf("dram %+v", s.DRAM)
	}
	if s.DRAM[0].LatencyX != 2.5 || s.DRAM[1].DutyOn != 10 || s.DRAM[1].DutyPeriod != 100 {
		t.Fatalf("dram %+v", s.DRAM)
	}
}

// A rendered spec must parse back to an equivalent spec (String is the
// label/report form of the grammar).
func TestStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"seed=7,dead-bank=3,dead-banks=2,dead-links=4",
		"dead-link=1>2,drop-link=5>6:0.25",
		"dram-slow=0:2.5,dram-blackout=1:10/100",
		"dram-slow=2:3,dram-blackout=2:5/50", // merged per-channel clauses
	} {
		s1, err := Parse(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", s1.String(), err)
		}
		if s1.String() != s2.String() {
			t.Fatalf("round trip %q -> %q -> %q", in, s1.String(), s2.String())
		}
	}
}

// dram-slow and dram-blackout clauses for one channel must merge into a
// single DRAMFault record.
func TestParseMergesDRAMClauses(t *testing.T) {
	s, err := Parse("dram-slow=1:2,dram-blackout=1:10/100")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.DRAM) != 1 {
		t.Fatalf("want one merged record, got %+v", s.DRAM)
	}
	d := s.DRAM[0]
	if d.Chan != 1 || d.LatencyX != 2 || d.DutyOn != 10 || d.DutyPeriod != 100 {
		t.Fatalf("merged record %+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"bogus",
		"unknown=1",
		"seed=x",
		"dead-bank=x",
		"dead-link=12",
		"dead-link=a>b",
		"drop-link=1>2",
		"drop-link=1>2:x",
		"dram-slow=0",
		"dram-slow=x:2",
		"dram-blackout=0:10",
		"dram-blackout=0:x/y",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestCheckRejections(t *testing.T) {
	const banks, chans = 16, 8
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"bank out of range", Spec{DeadBanks: []int{16}}, "out of range"},
		{"bank negative", Spec{DeadBanks: []int{-1}}, "out of range"},
		{"bank twice", Spec{DeadBanks: []int{3, 3}}, "twice"},
		{"negative auto count", Spec{NDeadBanks: -1}, "negative"},
		{"no survivor", Spec{NDeadBanks: 16}, "no survivor"},
		{"explicit plus auto no survivor", Spec{DeadBanks: []int{0}, NDeadBanks: 15}, "no survivor"},
		{"link endpoint out of range", Spec{Links: []LinkFault{{From: 0, To: 99, Dead: true}}}, "out of range"},
		{"link self loop", Spec{Links: []LinkFault{{From: 2, To: 2, Dead: true}}}, "self-loop"},
		{"drop probability 1", Spec{Links: []LinkFault{{From: 0, To: 1, Drop: 1}}}, "outside [0,1)"},
		{"link no effect", Spec{Links: []LinkFault{{From: 0, To: 1}}}, "neither dead nor drop"},
		{"dram channel out of range", Spec{DRAM: []DRAMFault{{Chan: 8, LatencyX: 2}}}, "out of range"},
		{"dram latency below 1", Spec{DRAM: []DRAMFault{{Chan: 0, LatencyX: 0.5}}}, "below 1"},
		{"dram duty on only", Spec{DRAM: []DRAMFault{{Chan: 0, DutyOn: 10}}}, "malformed"},
		{"dram duty on past period", Spec{DRAM: []DRAMFault{{Chan: 0, DutyOn: 20, DutyPeriod: 10}}}, "malformed"},
		{"dram no effect", Spec{DRAM: []DRAMFault{{Chan: 0}}}, "no effect"},
	}
	for _, c := range cases {
		err := c.spec.Check(banks, chans)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if err := (Spec{DeadBanks: []int{3}, NDeadLinks: 2}).Check(banks, chans); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	// channels == 0 skips only the DRAM upper bound (the mesh-free
	// validation path in sys.Config.Validate).
	if err := (Spec{DRAM: []DRAMFault{{Chan: 99, LatencyX: 2}}}).Check(banks, 0); err != nil {
		t.Errorf("channels=0 should skip the upper bound: %v", err)
	}
}

package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"affinityalloc/internal/engine"
	"affinityalloc/internal/telemetry"
	"affinityalloc/internal/topo"
)

// maxRetransmits bounds how many times one message retries a lossy link;
// past the bound the flits are assumed through (links degrade, they do
// not silently eat traffic forever).
const maxRetransmits = 3

// retransmitCycles is the per-retry latency penalty: timeout detection at
// the upstream router plus the replayed traversal.
const retransmitCycles engine.Time = 6

// maxInstants caps how many fault occurrences are recorded as trace
// instants; counters keep exact totals past the cap.
const maxInstants = 64

// dramState is one channel's resolved throttle.
type dramState struct {
	latX       float64
	dutyOn     uint64
	dutyPeriod uint64
}

// Injector is one System's resolved fault state: the degraded link map,
// the dead-bank set, per-channel DRAM throttles, a private seeded RNG for
// drop draws, and the fault counters telemetry publishes. It is built
// once per System and, like the rest of the machine model, is not safe
// for concurrent use — the simulation serializes all access, and each
// System owns its own injector, which is what keeps faulted runs
// byte-identical across harness worker counts.
type Injector struct {
	spec Spec
	mesh *topo.Mesh
	rng  *rand.Rand

	linkDead []bool    // by topo.Mesh.LinkIndex
	linkDrop []float64 // by topo.Mesh.LinkIndex
	deadBank []bool
	deadList []int // sorted dead banks
	survivor []int // sorted surviving banks
	nDeadLnk int

	dram []dramState

	// detours caches the alternate route around dead links per
	// (from, to) pair, keyed from*banks+to.
	detours map[int][]topo.Link

	// kills holds the resolved mid-run bank kills, sorted by (At, Bank).
	kills []BankKill

	// Counters (telemetry: fault_*).
	DropEvents       uint64 // messages that lost flits on a lossy link
	RetransmitFlits  uint64 // flits re-sent over lossy links
	DetourMessages   uint64 // messages routed around dead links
	DetourExtraHops  uint64 // hops beyond the clean X-Y distance
	DRAMStallCycles  uint64 // cycles requests waited out channel blackouts
	BankKillsApplied uint64 // mid-run bank kills that have fired
	instants         []telemetry.Instant
	instantsDropped  uint64
}

// New resolves a spec against a concrete mesh with the given DRAM channel
// count. It validates everything Check does plus the geometry-dependent
// rules: faulted links must join adjacent tiles, and the surviving link
// graph must stay strongly connected (every tile can still reach every
// other). Auto-picked victims are drawn from the spec's seeded RNG, so
// the same spec degrades the same machine in every run.
func New(spec Spec, mesh *topo.Mesh, channels int) (*Injector, error) {
	if err := spec.Check(mesh.Banks(), channels); err != nil {
		return nil, err
	}
	f := &Injector{
		spec:     spec,
		mesh:     mesh,
		rng:      rand.New(rand.NewSource(spec.seed())),
		linkDead: make([]bool, mesh.NumLinks()),
		linkDrop: make([]float64, mesh.NumLinks()),
		deadBank: make([]bool, mesh.Banks()),
		dram:     make([]dramState, channels),
		detours:  make(map[int][]topo.Link),
	}
	for _, d := range spec.DRAM {
		f.dram[d.Chan] = dramState{latX: d.LatencyX, dutyOn: d.DutyOn, dutyPeriod: d.DutyPeriod}
	}

	// Explicit link faults.
	for _, l := range spec.Links {
		idx, err := f.linkBetween(l.From, l.To)
		if err != nil {
			return nil, err
		}
		if l.Dead {
			f.linkDead[idx] = true
			f.nDeadLnk++
		} else {
			f.linkDrop[idx] = l.Drop
		}
	}
	if !f.stronglyConnected() {
		return nil, fmt.Errorf("faults: dead links disconnect the mesh")
	}

	// Auto-picked dead links: shuffle the internal link list and kill
	// candidates that keep the mesh strongly connected.
	if spec.NDeadLinks > 0 {
		cands := f.internalLinks()
		f.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		picked := 0
		for _, idx := range cands {
			if picked == spec.NDeadLinks {
				break
			}
			if f.linkDead[idx] {
				continue
			}
			f.linkDead[idx] = true
			if f.stronglyConnected() {
				picked++
				f.nDeadLnk++
			} else {
				f.linkDead[idx] = false
			}
		}
		if picked < spec.NDeadLinks {
			return nil, fmt.Errorf("faults: could only kill %d of %d links without disconnecting the mesh", picked, spec.NDeadLinks)
		}
	}

	// Mid-run kill targets: auto-picked dead banks must not claim them
	// (a bank cannot die at build time and again at cycle T).
	killTarget := make(map[int]bool, len(spec.Kills))
	for _, k := range spec.Kills {
		killTarget[k.Bank] = true
	}

	// Dead banks: explicit first, then auto-picked.
	for _, b := range spec.DeadBanks {
		f.deadBank[b] = true
	}
	if spec.NDeadBanks > 0 {
		order := make([]int, mesh.Banks())
		for i := range order {
			order[i] = i
		}
		f.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		picked := 0
		for _, b := range order {
			if picked == spec.NDeadBanks {
				break
			}
			if !f.deadBank[b] && !killTarget[b] {
				f.deadBank[b] = true
				picked++
			}
		}
		if picked < spec.NDeadBanks {
			return nil, fmt.Errorf("faults: could only disable %d of %d auto-picked banks", picked, spec.NDeadBanks)
		}
	}
	for b, dead := range f.deadBank {
		if dead {
			f.deadList = append(f.deadList, b)
		} else {
			f.survivor = append(f.survivor, b)
		}
	}
	if len(f.survivor) == 0 {
		return nil, fmt.Errorf("faults: no surviving bank")
	}
	if len(spec.Kills) > 0 {
		if len(f.survivor) <= len(spec.Kills) {
			return nil, fmt.Errorf("faults: %d mid-run kills leave no survivor of %d alive banks", len(spec.Kills), len(f.survivor))
		}
		f.kills = append(f.kills, spec.Kills...)
		sort.Slice(f.kills, func(i, j int) bool {
			if f.kills[i].At != f.kills[j].At {
				return f.kills[i].At < f.kills[j].At
			}
			return f.kills[i].Bank < f.kills[j].Bank
		})
	}

	// Record the configured degradation as cycle-0 trace instants.
	for range f.deadList {
		f.instant("dead_bank", 0)
	}
	for _, dead := range f.linkDead {
		if dead {
			f.instant("dead_link", 0)
		}
	}
	return f, nil
}

// Spec returns the resolved spec.
func (f *Injector) Spec() Spec { return f.spec }

// linkBetween returns the dense index of the directed link from bank a to
// adjacent bank b.
func (f *Injector) linkBetween(a, b int) (int, error) {
	ca, cb := f.mesh.CoordOf(a), f.mesh.CoordOf(b)
	var dir topo.LinkDir
	switch {
	case cb.X == ca.X+1 && cb.Y == ca.Y:
		dir = topo.East
	case cb.X == ca.X-1 && cb.Y == ca.Y:
		dir = topo.West
	case cb.Y == ca.Y+1 && cb.X == ca.X:
		dir = topo.South
	case cb.Y == ca.Y-1 && cb.X == ca.X:
		dir = topo.North
	default:
		return 0, fmt.Errorf("faults: banks %d and %d are not mesh-adjacent", a, b)
	}
	return f.mesh.LinkIndex(topo.Link{From: ca, Dir: dir}), nil
}

// internalLinks lists the dense indices of every directed link joining
// two in-mesh tiles, in a fixed scan order.
func (f *Injector) internalLinks() []int {
	var out []int
	w, h := f.mesh.Width(), f.mesh.Height()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := topo.Coord{X: x, Y: y}
			if x+1 < w {
				out = append(out, f.mesh.LinkIndex(topo.Link{From: c, Dir: topo.East}))
			}
			if x > 0 {
				out = append(out, f.mesh.LinkIndex(topo.Link{From: c, Dir: topo.West}))
			}
			if y+1 < h {
				out = append(out, f.mesh.LinkIndex(topo.Link{From: c, Dir: topo.South}))
			}
			if y > 0 {
				out = append(out, f.mesh.LinkIndex(topo.Link{From: c, Dir: topo.North}))
			}
		}
	}
	return out
}

// neighbors appends the tiles reachable from c over alive links (forward
// direction) or the tiles that can reach c (reverse), in fixed E,W,S,N
// order for deterministic BFS trees.
func (f *Injector) neighbors(dst []topo.Coord, c topo.Coord, reverse bool) []topo.Coord {
	w, h := f.mesh.Width(), f.mesh.Height()
	type step struct {
		dir    topo.LinkDir
		dx, dy int
		rev    topo.LinkDir
	}
	steps := [4]step{
		{topo.East, 1, 0, topo.West},
		{topo.West, -1, 0, topo.East},
		{topo.South, 0, 1, topo.North},
		{topo.North, 0, -1, topo.South},
	}
	for _, s := range steps {
		n := topo.Coord{X: c.X + s.dx, Y: c.Y + s.dy}
		if n.X < 0 || n.X >= w || n.Y < 0 || n.Y >= h {
			continue
		}
		var idx int
		if reverse {
			idx = f.mesh.LinkIndex(topo.Link{From: n, Dir: s.rev})
		} else {
			idx = f.mesh.LinkIndex(topo.Link{From: c, Dir: s.dir})
		}
		if f.linkDead[idx] {
			continue
		}
		dst = append(dst, n)
	}
	return dst
}

// stronglyConnected reports whether every tile reaches every other over
// alive links: a forward and a reverse BFS from tile 0 must each cover
// the mesh.
func (f *Injector) stronglyConnected() bool {
	for _, reverse := range [2]bool{false, true} {
		seen := make([]bool, f.mesh.Banks())
		queue := []topo.Coord{f.mesh.CoordOf(0)}
		seen[0] = true
		count := 1
		var nbuf []topo.Coord
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			nbuf = f.neighbors(nbuf[:0], c, reverse)
			for _, n := range nbuf {
				b := f.mesh.BankAt(n)
				if !seen[b] {
					seen[b] = true
					count++
					queue = append(queue, n)
				}
			}
		}
		if count != f.mesh.Banks() {
			return false
		}
	}
	return true
}

// BankKills returns the resolved mid-run kills, sorted by (At, Bank) —
// the deterministic order cache.MemSystem applies them in.
func (f *Injector) BankKills() []BankKill {
	return append([]BankKill(nil), f.kills...)
}

// NoteBankKill records a mid-run bank kill that has fired: the injector's
// own dead-bank view (NearestAlive, telemetry) tracks the shrunken
// machine, and the occurrence lands in the trace as a bank_kill instant.
// memsim.Space.KillBank applies the actual remap; this keeps the
// injector's bookkeeping in step.
func (f *Injector) NoteBankKill(at engine.Time, b int) {
	if f.deadBank[b] {
		return
	}
	f.deadBank[b] = true
	f.deadList = f.deadList[:0]
	f.survivor = f.survivor[:0]
	for bank, dead := range f.deadBank {
		if dead {
			f.deadList = append(f.deadList, bank)
		} else {
			f.survivor = append(f.survivor, bank)
		}
	}
	f.BankKillsApplied++
	f.instant("bank_kill", uint64(at))
}

// DeadBankList returns the sorted dead banks (for memsim.Config).
func (f *Injector) DeadBankList() []int {
	return append([]int(nil), f.deadList...)
}

// DeadLinks returns the number of dead directed links.
func (f *Injector) DeadLinks() int { return f.nDeadLnk }

// BankAlive reports whether a bank survived.
func (f *Injector) BankAlive(b int) bool { return !f.deadBank[b] }

// NearestAlive returns the surviving bank closest to b (b itself when
// alive); ties break toward the lowest bank number.
func (f *Injector) NearestAlive(b int) int {
	if !f.deadBank[b] {
		return b
	}
	best, bestHops := f.survivor[0], f.mesh.Hops(b, f.survivor[0])
	for _, s := range f.survivor[1:] {
		if h := f.mesh.Hops(b, s); h < bestHops {
			best, bestHops = s, h
		}
	}
	return best
}

// DegradedLinks reports whether any link fault is configured (the NoC
// fast path stays untouched otherwise).
func (f *Injector) DegradedLinks() bool {
	return f.nDeadLnk > 0 || f.hasDrop()
}

func (f *Injector) hasDrop() bool {
	for _, p := range f.linkDrop {
		if p > 0 {
			return true
		}
	}
	return false
}

// Route appends the route from bank from to bank to that avoids dead
// links, and reports whether it detours off the X-Y path. The clean X-Y
// route is used whenever it survives; otherwise a cached BFS detour over
// alive links (deterministic: fixed neighbor order).
func (f *Injector) Route(dst []topo.Link, from, to int) ([]topo.Link, bool) {
	dst = f.mesh.Route(dst, from, to)
	clean := true
	for _, l := range dst {
		if f.linkDead[f.mesh.LinkIndex(l)] {
			clean = false
			break
		}
	}
	if clean {
		return dst, false
	}
	return append(dst[:0], f.detour(from, to)...), true
}

// detour returns (computing and caching on first use) the BFS shortest
// path from from to to over alive links.
func (f *Injector) detour(from, to int) []topo.Link {
	key := from*f.mesh.Banks() + to
	if r, ok := f.detours[key]; ok {
		return r
	}
	// BFS with parent links; connectivity was validated at construction,
	// so a path always exists.
	parent := make([]topo.Link, f.mesh.Banks())
	seen := make([]bool, f.mesh.Banks())
	queue := []topo.Coord{f.mesh.CoordOf(from)}
	seen[from] = true
	var nbuf []topo.Coord
	for len(queue) > 0 && !seen[to] {
		c := queue[0]
		queue = queue[1:]
		nbuf = f.neighbors(nbuf[:0], c, false)
		for _, n := range nbuf {
			b := f.mesh.BankAt(n)
			if seen[b] {
				continue
			}
			seen[b] = true
			parent[b] = topo.Link{From: c, Dir: dirBetween(c, n)}
			queue = append(queue, n)
		}
	}
	if !seen[to] {
		panic(fmt.Sprintf("faults: no route %d->%d despite validated connectivity (programmer error)", from, to))
	}
	var rev []topo.Link
	for b := to; b != from; {
		l := parent[b]
		rev = append(rev, l)
		b = f.mesh.BankAt(l.From)
	}
	route := make([]topo.Link, len(rev))
	for i := range rev {
		route[i] = rev[len(rev)-1-i]
	}
	f.detours[key] = route
	return route
}

// dirBetween returns the link direction from adjacent coordinate a to b.
func dirBetween(a, b topo.Coord) topo.LinkDir {
	switch {
	case b.X > a.X:
		return topo.East
	case b.X < a.X:
		return topo.West
	case b.Y > a.Y:
		return topo.South
	default:
		return topo.North
	}
}

// NoteDetour records one message routed around dead links with the given
// extra hops beyond the clean X-Y distance.
func (f *Injector) NoteDetour(at engine.Time, extraHops int) {
	f.DetourMessages++
	f.DetourExtraHops += uint64(extraHops)
	f.instant("link_detour", uint64(at))
}

// LinkRetransmits draws the retransmission count for one message crossing
// the link with dense index idx, returning the extra flit-units the link
// must carry and the added latency. Zero for clean links. Draw order is
// the simulation's deterministic message order, so results reproduce.
func (f *Injector) LinkRetransmits(at engine.Time, idx, flits int) (extraUnits int, delay engine.Time) {
	p := f.linkDrop[idx]
	if p <= 0 {
		return 0, 0
	}
	retries := 0
	for retries < maxRetransmits && f.rng.Float64() < p {
		retries++
	}
	if retries == 0 {
		return 0, 0
	}
	f.DropEvents++
	f.RetransmitFlits += uint64(retries * flits)
	f.instant("flit_drop", uint64(at))
	return retries * flits, engine.Time(retries) * retransmitCycles
}

// DRAMAdjust applies channel ch's throttle to an access that would start
// service at start with the given base latency: blackout windows push the
// start to the next on-window (counted as stall cycles), and the latency
// multiplier stretches the access itself.
func (f *Injector) DRAMAdjust(ch int, start, latency engine.Time) (engine.Time, engine.Time) {
	st := f.dram[ch]
	if st.dutyPeriod > 0 {
		phase := uint64(start) % st.dutyPeriod
		if phase >= st.dutyOn {
			wait := engine.Time(st.dutyPeriod - phase)
			f.DRAMStallCycles += uint64(wait)
			f.instant("dram_blackout_wait", uint64(start))
			start += wait
		}
	}
	if st.latX > 1 {
		latency = engine.Time(float64(latency) * st.latX)
	}
	return start, latency
}

// instant records a capped fault occurrence for the trace exporter.
func (f *Injector) instant(name string, ts uint64) {
	if len(f.instants) >= maxInstants {
		f.instantsDropped++
		return
	}
	f.instants = append(f.instants, telemetry.Instant{Name: name, Cat: "fault", TS: ts})
}

// PublishTelemetry publishes the fault counters and the recorded fault
// instants. Only called for faulted systems, so clean runs' metrics
// documents carry no fault_* keys and stay byte-identical to builds
// without the injector.
func (f *Injector) PublishTelemetry(r *telemetry.Registry) {
	r.Set("fault_dead_banks", uint64(len(f.deadList)))
	r.Set("fault_dead_links", uint64(f.nDeadLnk))
	r.Set("fault_link_drop_events", f.DropEvents)
	r.Set("fault_link_retransmit_flits", f.RetransmitFlits)
	r.Set("fault_detour_messages", f.DetourMessages)
	r.Set("fault_detour_extra_hops", f.DetourExtraHops)
	r.Set("fault_dram_stall_cycles", f.DRAMStallCycles)
	if len(f.spec.Kills) > 0 {
		// Only kill-bank specs carry the key, so existing faulted
		// baselines stay byte-identical.
		r.Set("fault_bank_kills", f.BankKillsApplied)
	}
	r.Set("fault_instants_dropped", f.instantsDropped)
	for _, in := range f.instants {
		r.AddInstant(in)
	}
}

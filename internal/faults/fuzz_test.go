package faults

import "testing"

// FuzzParse throws arbitrary flag strings at the -faults grammar. The
// parser must never panic, and a spec it accepts must render (String) to
// a string that re-parses to the same rendering — the property labels and
// reports rely on.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("seed=7,dead-bank=3,dead-banks=2,dead-links=4")
	f.Add("dead-link=1>2,drop-link=5>6:0.25")
	f.Add("dram-slow=0:2.5,dram-blackout=1:10/100")
	f.Add("dead-bank=3,dead-bank=3")
	f.Add("seed=,dead-link=>")
	f.Add(",,,")
	f.Add("dead-banks=-1")
	f.Add("drop-link=1>2:1e308")

	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return
		}
		// Only well-formed specs need the round-trip property; Parse is
		// syntax-only (Check owns range validation), so e.g. a negative
		// auto-pick count parses but renders as if absent.
		if s.Check(1<<30, 1<<30) != nil {
			return
		}
		rendered := s.String()
		s2, err := Parse(rendered)
		if err != nil && rendered != "none" {
			t.Fatalf("rendering %q of accepted spec does not re-parse: %v", rendered, err)
		}
		if err == nil && s2.String() != rendered {
			t.Fatalf("String is not a fixed point: %q -> %q", rendered, s2.String())
		}
	})
}

// Package faults is the deterministic fault injector: a seeded model of a
// degraded substrate — dead or lossy NoC links, disabled L3 banks, and
// throttled DRAM channels — that the system assembles against when
// sys.Config.Faults is non-empty. Everything the injector does is a pure
// function of (spec, topology, seed): the same spec produces the same
// degraded machine and the same per-message decisions in every run,
// regardless of harness parallelism, so faulted experiments stay
// byte-identical across -j values.
//
// The interesting consequence for the paper's argument is the dead-bank
// remap: disabling a bank rehomes its cache lines onto the survivors
// (memsim.Space applies the remap inside BankOfPhys), so the IOT/affinity
// layer — and therefore every Affinity Alloc placement decision — observes
// the degraded bank map rather than the nominal one.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LinkFault degrades one directed mesh link between adjacent tiles
// (identified by bank numbers). Dead removes the link entirely, forcing
// X-Y routes that crossed it onto detours; Drop is a per-message flit-drop
// probability in [0,1) paid as bounded retransmits.
type LinkFault struct {
	From, To int
	Drop     float64
	Dead     bool
}

// DRAMFault throttles one DRAM channel: LatencyX multiplies the access
// latency (>= 1), and DutyOn/DutyPeriod impose a duty-cycle blackout —
// the channel serves only during the first DutyOn cycles of every
// DutyPeriod-cycle window.
type DRAMFault struct {
	Chan       int
	LatencyX   float64
	DutyOn     uint64
	DutyPeriod uint64
}

// BankKill disables one L3 bank mid-run: the bank dies at the first
// memory access whose cycle reaches At. Unlike DeadBanks — resolved once
// at machine-build time — a kill degrades a machine that has already
// placed data, which is the scenario the online reconciler exists for.
type BankKill struct {
	Bank int
	At   uint64
}

// Spec is the declarative fault configuration carried in sys.Config. The
// zero value injects nothing. Specs parse from the -faults flag grammar
// (see Parse) and validate against a concrete topology when the injector
// is built.
type Spec struct {
	// Seed drives every randomized decision (auto-picked victims, drop
	// draws). Zero selects seed 1 so an unseeded spec is still
	// deterministic.
	Seed int64
	// DeadBanks lists explicitly disabled L3 banks.
	DeadBanks []int
	// NDeadBanks additionally disables this many auto-picked banks.
	NDeadBanks int
	// NDeadLinks kills this many auto-picked links (connectivity
	// permitting).
	NDeadLinks int
	// Links lists explicit per-link faults.
	Links []LinkFault
	// DRAM lists per-channel throttles.
	DRAM []DRAMFault
	// Kills lists banks that die mid-run at a given cycle.
	Kills []BankKill
}

// Empty reports whether the spec injects nothing.
func (s Spec) Empty() bool {
	return len(s.DeadBanks) == 0 && s.NDeadBanks == 0 && s.NDeadLinks == 0 &&
		len(s.Links) == 0 && len(s.DRAM) == 0 && len(s.Kills) == 0
}

// seed returns the effective RNG seed.
func (s Spec) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// Check validates the spec's topology-dependent fields against a mesh of
// banks tiles and channels DRAM channels, without building an injector —
// the cheap pre-assembly validation sys.Config.Validate runs. Adjacency
// and connectivity are checked at injector construction, which knows the
// mesh geometry.
func (s Spec) Check(banks, channels int) error {
	seen := make(map[int]bool, len(s.DeadBanks))
	for _, b := range s.DeadBanks {
		if b < 0 || b >= banks {
			return fmt.Errorf("faults: dead bank %d out of range [0,%d)", b, banks)
		}
		if seen[b] {
			return fmt.Errorf("faults: bank %d listed dead twice", b)
		}
		seen[b] = true
	}
	if s.NDeadBanks < 0 || s.NDeadLinks < 0 {
		return fmt.Errorf("faults: negative auto-pick count (dead-banks=%d, dead-links=%d)", s.NDeadBanks, s.NDeadLinks)
	}
	killed := make(map[int]bool, len(s.Kills))
	for _, k := range s.Kills {
		if k.Bank < 0 || k.Bank >= banks {
			return fmt.Errorf("faults: kill-bank %d out of range [0,%d)", k.Bank, banks)
		}
		if k.At == 0 {
			return fmt.Errorf("faults: kill-bank %d at cycle 0 — use dead-bank for build-time faults", k.Bank)
		}
		if killed[k.Bank] {
			return fmt.Errorf("faults: bank %d killed twice", k.Bank)
		}
		if seen[k.Bank] {
			return fmt.Errorf("faults: bank %d both dead and killed", k.Bank)
		}
		killed[k.Bank] = true
	}
	if dead := len(s.DeadBanks) + s.NDeadBanks + len(s.Kills); dead >= banks {
		return fmt.Errorf("faults: %d dead banks leaves no survivor of %d", dead, banks)
	}
	for _, l := range s.Links {
		if l.From < 0 || l.From >= banks || l.To < 0 || l.To >= banks {
			return fmt.Errorf("faults: link %d>%d endpoint out of range [0,%d)", l.From, l.To, banks)
		}
		if l.From == l.To {
			return fmt.Errorf("faults: link %d>%d is a self-loop", l.From, l.To)
		}
		if l.Drop < 0 || l.Drop >= 1 {
			return fmt.Errorf("faults: link %d>%d drop probability %g outside [0,1)", l.From, l.To, l.Drop)
		}
		if !l.Dead && l.Drop == 0 {
			return fmt.Errorf("faults: link %d>%d has neither dead nor drop", l.From, l.To)
		}
	}
	for _, d := range s.DRAM {
		if d.Chan < 0 || (channels > 0 && d.Chan >= channels) {
			return fmt.Errorf("faults: DRAM channel %d out of range [0,%d)", d.Chan, channels)
		}
		if d.LatencyX != 0 && d.LatencyX < 1 {
			return fmt.Errorf("faults: DRAM channel %d latency multiplier %g below 1", d.Chan, d.LatencyX)
		}
		if (d.DutyOn == 0) != (d.DutyPeriod == 0) || d.DutyOn > d.DutyPeriod {
			return fmt.Errorf("faults: DRAM channel %d duty cycle %d/%d malformed (want 0 < on <= period)", d.Chan, d.DutyOn, d.DutyPeriod)
		}
		if d.LatencyX == 0 && d.DutyPeriod == 0 {
			return fmt.Errorf("faults: DRAM channel %d fault has no effect", d.Chan)
		}
	}
	return nil
}

// Parse reads the -faults flag grammar: comma-separated clauses, each one
// of
//
//	seed=N                 RNG seed for auto-picks and drop draws
//	dead-bank=B            disable L3 bank B (repeatable)
//	dead-banks=N           disable N auto-picked banks
//	dead-link=A>B          kill the directed link from tile A to adjacent tile B
//	dead-links=N           kill N auto-picked links (keeping the mesh connected)
//	drop-link=A>B:P        drop flits on link A>B with probability P in [0,1)
//	dram-slow=C:X          multiply channel C's access latency by X (>= 1)
//	dram-blackout=C:ON/PER channel C serves only ON of every PER cycles
//	kill-bank=B@T          disable bank B mid-run at sim-cycle T (> 0)
//
// An empty string parses to the empty spec.
func Parse(v string) (Spec, error) {
	var s Spec
	v = strings.TrimSpace(v)
	if v == "" {
		return s, nil
	}
	dram := make(map[int]*DRAMFault)
	for _, clause := range strings.Split(v, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: clause %q is not key=value", clause)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: seed %q: %v", val, err)
			}
			s.Seed = n
		case "dead-bank":
			b, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: dead-bank %q: %v", val, err)
			}
			s.DeadBanks = append(s.DeadBanks, b)
		case "dead-banks":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: dead-banks %q: %v", val, err)
			}
			s.NDeadBanks = n
		case "dead-links":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: dead-links %q: %v", val, err)
			}
			s.NDeadLinks = n
		case "dead-link":
			from, to, err := parseLink(val)
			if err != nil {
				return Spec{}, err
			}
			s.Links = append(s.Links, LinkFault{From: from, To: to, Dead: true})
		case "drop-link":
			ep, pStr, ok := strings.Cut(val, ":")
			if !ok {
				return Spec{}, fmt.Errorf("faults: drop-link %q: want A>B:P", val)
			}
			from, to, err := parseLink(ep)
			if err != nil {
				return Spec{}, err
			}
			p, err := strconv.ParseFloat(pStr, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: drop-link probability %q: %v", pStr, err)
			}
			s.Links = append(s.Links, LinkFault{From: from, To: to, Drop: p})
		case "dram-slow":
			cStr, xStr, ok := strings.Cut(val, ":")
			if !ok {
				return Spec{}, fmt.Errorf("faults: dram-slow %q: want C:X", val)
			}
			c, err := strconv.Atoi(cStr)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: dram-slow channel %q: %v", cStr, err)
			}
			x, err := strconv.ParseFloat(xStr, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: dram-slow multiplier %q: %v", xStr, err)
			}
			dramFaultFor(dram, &s, c).LatencyX = x
		case "dram-blackout":
			cStr, duty, ok := strings.Cut(val, ":")
			if !ok {
				return Spec{}, fmt.Errorf("faults: dram-blackout %q: want C:ON/PERIOD", val)
			}
			c, err := strconv.Atoi(cStr)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: dram-blackout channel %q: %v", cStr, err)
			}
			onStr, perStr, ok := strings.Cut(duty, "/")
			if !ok {
				return Spec{}, fmt.Errorf("faults: dram-blackout duty %q: want ON/PERIOD", duty)
			}
			on, err := strconv.ParseUint(onStr, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: dram-blackout on %q: %v", onStr, err)
			}
			per, err := strconv.ParseUint(perStr, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: dram-blackout period %q: %v", perStr, err)
			}
			f := dramFaultFor(dram, &s, c)
			f.DutyOn, f.DutyPeriod = on, per
		case "kill-bank":
			bStr, tStr, ok := strings.Cut(val, "@")
			if !ok {
				return Spec{}, fmt.Errorf("faults: kill-bank %q: want B@T", val)
			}
			b, err := strconv.Atoi(bStr)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: kill-bank bank %q: %v", bStr, err)
			}
			at, err := strconv.ParseUint(tStr, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: kill-bank cycle %q: %v", tStr, err)
			}
			s.Kills = append(s.Kills, BankKill{Bank: b, At: at})
		default:
			return Spec{}, fmt.Errorf("faults: unknown clause %q", key)
		}
	}
	return s, nil
}

// dramFaultFor returns (creating if needed) the spec's fault record for a
// channel, so dram-slow and dram-blackout clauses for one channel merge.
func dramFaultFor(idx map[int]*DRAMFault, s *Spec, ch int) *DRAMFault {
	if f, ok := idx[ch]; ok {
		return f
	}
	s.DRAM = append(s.DRAM, DRAMFault{Chan: ch})
	f := &s.DRAM[len(s.DRAM)-1]
	idx[ch] = f
	return f
}

// parseLink reads "A>B" into endpoint bank numbers.
func parseLink(v string) (from, to int, err error) {
	a, b, ok := strings.Cut(v, ">")
	if !ok {
		return 0, 0, fmt.Errorf("faults: link %q: want A>B", v)
	}
	if from, err = strconv.Atoi(a); err != nil {
		return 0, 0, fmt.Errorf("faults: link endpoint %q: %v", a, err)
	}
	if to, err = strconv.Atoi(b); err != nil {
		return 0, 0, fmt.Errorf("faults: link endpoint %q: %v", b, err)
	}
	return from, to, nil
}

// String renders the spec back in the flag grammar (clauses in a fixed
// order), for labels and reports.
func (s Spec) String() string {
	if s.Empty() {
		return "none"
	}
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	banks := append([]int(nil), s.DeadBanks...)
	sort.Ints(banks)
	for _, b := range banks {
		parts = append(parts, fmt.Sprintf("dead-bank=%d", b))
	}
	if s.NDeadBanks > 0 {
		parts = append(parts, fmt.Sprintf("dead-banks=%d", s.NDeadBanks))
	}
	if s.NDeadLinks > 0 {
		parts = append(parts, fmt.Sprintf("dead-links=%d", s.NDeadLinks))
	}
	for _, l := range s.Links {
		if l.Dead {
			parts = append(parts, fmt.Sprintf("dead-link=%d>%d", l.From, l.To))
		} else {
			parts = append(parts, fmt.Sprintf("drop-link=%d>%d:%g", l.From, l.To, l.Drop))
		}
	}
	for _, d := range s.DRAM {
		if d.LatencyX != 0 {
			parts = append(parts, fmt.Sprintf("dram-slow=%d:%g", d.Chan, d.LatencyX))
		}
		if d.DutyPeriod != 0 {
			parts = append(parts, fmt.Sprintf("dram-blackout=%d:%d/%d", d.Chan, d.DutyOn, d.DutyPeriod))
		}
	}
	for _, k := range s.Kills {
		parts = append(parts, fmt.Sprintf("kill-bank=%d@%d", k.Bank, k.At))
	}
	return strings.Join(parts, ",")
}

package faults

import (
	"reflect"
	"strings"
	"testing"

	"affinityalloc/internal/engine"
	"affinityalloc/internal/topo"
)

func mesh4(t *testing.T) *topo.Mesh {
	t.Helper()
	return topo.MustMesh(4, 4, topo.RowMajor)
}

// checkRoute verifies a route is a contiguous hop chain from from to to
// over alive links.
func checkRoute(t *testing.T, f *Injector, m *topo.Mesh, route []topo.Link, from, to int) {
	t.Helper()
	at := m.CoordOf(from)
	for i, l := range route {
		if l.From != at {
			t.Fatalf("hop %d starts at %v, expected %v (route %v)", i, l.From, at, route)
		}
		if f.linkDead[m.LinkIndex(l)] {
			t.Fatalf("hop %d crosses dead link %v", i, l)
		}
		at = stepCoord(l)
	}
	if m.BankAt(at) != to {
		t.Fatalf("route ends at bank %d, want %d", m.BankAt(at), to)
	}
}

func stepCoord(l topo.Link) topo.Coord {
	switch l.Dir {
	case topo.East:
		return topo.Coord{X: l.From.X + 1, Y: l.From.Y}
	case topo.West:
		return topo.Coord{X: l.From.X - 1, Y: l.From.Y}
	case topo.South:
		return topo.Coord{X: l.From.X, Y: l.From.Y + 1}
	default:
		return topo.Coord{X: l.From.X, Y: l.From.Y - 1}
	}
}

func TestDeadLinkForcesDetour(t *testing.T) {
	m := mesh4(t)
	// Kill the eastbound link 1>2 on the top row. X-Y routes crossing it
	// (0>3, 1>2, ...) must detour; everything else stays on X-Y.
	f, err := New(Spec{Links: []LinkFault{{From: 1, To: 2, Dead: true}}}, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	route, detoured := f.Route(nil, 0, 3)
	if !detoured {
		t.Fatal("route 0>3 crosses the dead link but did not detour")
	}
	checkRoute(t, f, m, route, 0, 3)
	if len(route) < m.Hops(0, 3) {
		t.Fatalf("detour of %d hops shorter than clean distance %d", len(route), m.Hops(0, 3))
	}

	// An unaffected pair keeps the clean X-Y route.
	clean, detoured := f.Route(nil, 4, 7)
	if detoured {
		t.Fatal("route 4>7 does not cross the dead link but detoured")
	}
	want := m.Route(nil, 4, 7)
	if !reflect.DeepEqual(clean, want) {
		t.Fatalf("clean route %v != X-Y route %v", clean, want)
	}

	// The reverse direction 2>1 is a separate directed link and stays
	// alive.
	if _, detoured := f.Route(nil, 2, 1); detoured {
		t.Fatal("directed fault 1>2 must not affect 2>1")
	}
}

func TestDisconnectingLinksRejected(t *testing.T) {
	m := topo.MustMesh(2, 2, topo.RowMajor)
	// Killing both inbound links of tile 3 makes it unreachable.
	spec := Spec{Links: []LinkFault{
		{From: 1, To: 3, Dead: true},
		{From: 2, To: 3, Dead: true},
	}}
	if _, err := New(spec, m, 4); err == nil || !strings.Contains(err.Error(), "disconnect") {
		t.Fatalf("disconnected mesh accepted (err=%v)", err)
	}
}

func TestNonAdjacentLinkRejected(t *testing.T) {
	m := mesh4(t)
	spec := Spec{Links: []LinkFault{{From: 0, To: 5, Dead: true}}}
	if _, err := New(spec, m, 8); err == nil || !strings.Contains(err.Error(), "adjacent") {
		t.Fatalf("diagonal link accepted (err=%v)", err)
	}
}

// The same spec must resolve to the same degraded machine and the same
// routes every time — the property that keeps faulted runs byte-identical
// across harness parallelism.
func TestAutoPickDeterminism(t *testing.T) {
	spec := Spec{Seed: 42, NDeadBanks: 3, NDeadLinks: 4}
	m := mesh4(t)
	a, err := New(spec, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(spec, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.DeadBankList(), b.DeadBankList()) {
		t.Fatalf("dead banks differ: %v vs %v", a.DeadBankList(), b.DeadBankList())
	}
	if len(a.DeadBankList()) != 3 || a.DeadLinks() != 4 {
		t.Fatalf("picked %d banks, %d links", len(a.DeadBankList()), a.DeadLinks())
	}
	for from := 0; from < m.Banks(); from++ {
		for to := 0; to < m.Banks(); to++ {
			if from == to {
				continue
			}
			ra, da := a.Route(nil, from, to)
			rb, db := b.Route(nil, from, to)
			if da != db || !reflect.DeepEqual(ra, rb) {
				t.Fatalf("route %d>%d differs between identically-specced injectors", from, to)
			}
			checkRoute(t, a, m, ra, from, to)
		}
	}
	// A different seed picks different victims (overwhelmingly likely;
	// pinned by the fixed seeds, so not flaky).
	c, err := New(Spec{Seed: 43, NDeadBanks: 3, NDeadLinks: 4}, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.DeadBankList(), c.DeadBankList()) {
		t.Fatalf("seeds 42 and 43 picked the same dead banks %v", a.DeadBankList())
	}
}

func TestNearestAlive(t *testing.T) {
	m := mesh4(t)
	f, err := New(Spec{DeadBanks: []int{0, 5}}, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.NearestAlive(7); got != 7 {
		t.Fatalf("alive bank redirected to %d", got)
	}
	// Bank 0's one-hop neighbors are 1 (east) and 4 (south); ties break
	// toward the lowest bank number.
	if got := f.NearestAlive(0); got != 1 {
		t.Fatalf("NearestAlive(0) = %d, want 1", got)
	}
	// Bank 5's one-hop neighbors 1, 4, 6, 9 are all alive; lowest wins.
	if got := f.NearestAlive(5); got != 1 {
		t.Fatalf("NearestAlive(5) = %d, want 1", got)
	}
	if f.BankAlive(0) || !f.BankAlive(1) {
		t.Fatal("BankAlive disagrees with the spec")
	}
}

func TestDRAMAdjust(t *testing.T) {
	m := mesh4(t)
	f, err := New(Spec{DRAM: []DRAMFault{
		{Chan: 0, DutyOn: 10, DutyPeriod: 100},
		{Chan: 1, LatencyX: 2.5},
	}}, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Inside the on-window: untouched.
	if start, lat := f.DRAMAdjust(0, 5, 20); start != 5 || lat != 20 {
		t.Fatalf("on-window access moved to (%d, %d)", start, lat)
	}
	// In the blackout (phase 50 of 100): pushed to the next window start.
	start, lat := f.DRAMAdjust(0, 150, 20)
	if start != 200 || lat != 20 {
		t.Fatalf("blackout access moved to (%d, %d), want (200, 20)", start, lat)
	}
	if f.DRAMStallCycles != 50 {
		t.Fatalf("stall cycles %d, want 50", f.DRAMStallCycles)
	}
	// Latency multiplier stretches the access, not its start.
	if start, lat := f.DRAMAdjust(1, 7, 20); start != 7 || lat != 50 {
		t.Fatalf("slow channel access (%d, %d), want (7, 50)", start, lat)
	}
	// An unfaulted channel is a no-op.
	if start, lat := f.DRAMAdjust(2, 7, 20); start != 7 || lat != 20 {
		t.Fatalf("clean channel access (%d, %d)", start, lat)
	}
}

func TestLinkRetransmitsDeterministic(t *testing.T) {
	spec := Spec{Seed: 9, Links: []LinkFault{{From: 0, To: 1, Drop: 0.9}}}
	m := mesh4(t)
	a, _ := New(spec, m, 8)
	b, _ := New(spec, m, 8)
	idx := m.LinkIndex(topo.Link{From: m.CoordOf(0), Dir: topo.East})
	sawRetry := false
	for i := 0; i < 50; i++ {
		ea, da := a.LinkRetransmits(engine.Time(i), idx, 4)
		eb, db := b.LinkRetransmits(engine.Time(i), idx, 4)
		if ea != eb || da != db {
			t.Fatalf("draw %d differs: (%d,%d) vs (%d,%d)", i, ea, da, eb, db)
		}
		if ea > 0 {
			sawRetry = true
			if ea > maxRetransmits*4 {
				t.Fatalf("draw %d: %d extra flit-units exceeds the retransmit bound", i, ea)
			}
		}
	}
	if !sawRetry {
		t.Fatal("p=0.9 link never retransmitted in 50 draws")
	}
	if a.DropEvents == 0 || a.RetransmitFlits == 0 {
		t.Fatal("retransmit counters not updated")
	}
	// A clean link never draws (and so never perturbs the RNG stream).
	cleanIdx := m.LinkIndex(topo.Link{From: m.CoordOf(4), Dir: topo.East})
	if e, d := a.LinkRetransmits(0, cleanIdx, 4); e != 0 || d != 0 {
		t.Fatalf("clean link retransmitted (%d, %d)", e, d)
	}
}

func TestDeadBanksStayRoutable(t *testing.T) {
	// Dead banks only disable cache capacity; their tiles keep routing.
	m := mesh4(t)
	f, err := New(Spec{DeadBanks: []int{5}, NDeadLinks: 6, Seed: 3}, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	route, _ := f.Route(nil, 0, 5)
	checkRoute(t, f, m, route, 0, 5)
	if len(f.DeadBankList()) != 1 || f.DeadBankList()[0] != 5 {
		t.Fatalf("dead banks %v", f.DeadBankList())
	}
}

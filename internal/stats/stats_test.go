package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTimelineDistribution(t *testing.T) {
	tl := NewTimeline(4, 10)
	// Bucket 0: bank 0 gets 3 events, bank 1 gets 1, banks 2-3 none.
	tl.Add(0, 1)
	tl.Add(0, 5)
	tl.Add(0, 9)
	tl.Add(1, 3)
	// Bucket 2: one event.
	tl.Add(2, 25)
	if tl.Buckets() != 3 {
		t.Fatalf("buckets %d, want 3", tl.Buckets())
	}
	d := tl.Distribution(0)
	if d.Min != 0 || d.Max != 3 || d.Avg != 1 {
		t.Errorf("bucket 0 dist %+v", d)
	}
	if got := tl.Distribution(5); got != (Dist{}) {
		t.Errorf("out-of-range bucket returned %+v", got)
	}
}

func TestTimelineImbalance(t *testing.T) {
	balanced := NewTimeline(4, 1)
	for b := 0; b < 4; b++ {
		balanced.Add(b, 0)
	}
	if got := balanced.Imbalance(); got != 1 {
		t.Errorf("balanced imbalance %f, want 1", got)
	}
	skewed := NewTimeline(4, 1)
	for i := 0; i < 8; i++ {
		skewed.Add(0, 0)
	}
	if got := skewed.Imbalance(); got != 4 {
		t.Errorf("skewed imbalance %f, want 4", got)
	}
	if empty := NewTimeline(4, 1); empty.Imbalance() != 1 {
		t.Error("empty timeline imbalance != 1")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", uint64(42))
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "1.500", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line at least as wide as the header.
	// Title + header + separator + two rows.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines", len(lines))
	}
	if len(tbl.Rows()) != 2 {
		t.Errorf("Rows() = %d", len(tbl.Rows()))
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %f", g)
	}
	// Zero/negative values are skipped.
	if g := Geomean([]float64{0, -1, 4}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean skipping nonpositive = %f", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %f", g)
	}
	// No overflow on many large values.
	many := make([]float64, 1000)
	for i := range many {
		many[i] = 1e300
	}
	if g := Geomean(many); math.IsInf(g, 0) || math.Abs(g-1e300)/1e300 > 1e-6 {
		t.Errorf("Geomean large values = %g", g)
	}
}

// Package stats provides the measurement utilities the evaluation needs:
// per-bank occupancy timelines (Fig 14), distribution summaries, and
// aligned text tables for paper-shaped output.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"affinityalloc/internal/engine"
)

// Timeline buckets per-bank event counts over time — the raw material for
// Fig 14's per-bank atomic-stream occupancy distribution.
type Timeline struct {
	banks   int
	bucket  engine.Time
	counts  [][]uint32 // counts[bucketIdx][bank]
	maxSeen engine.Time
}

// NewTimeline creates a timeline with the given bucket width in cycles.
func NewTimeline(banks int, bucket engine.Time) *Timeline {
	if bucket == 0 {
		bucket = 1
	}
	return &Timeline{banks: banks, bucket: bucket}
}

// Add records one event at a bank and cycle.
func (tl *Timeline) Add(bank int, at engine.Time) {
	idx := int(at / tl.bucket)
	for len(tl.counts) <= idx {
		tl.counts = append(tl.counts, make([]uint32, tl.banks))
	}
	tl.counts[idx][bank]++
	if at > tl.maxSeen {
		tl.maxSeen = at
	}
}

// Buckets returns the number of time buckets recorded.
func (tl *Timeline) Buckets() int { return len(tl.counts) }

// BucketWidth returns the bucket width in cycles.
func (tl *Timeline) BucketWidth() engine.Time { return tl.bucket }

// Dist summarizes the per-bank distribution within one bucket.
type Dist struct {
	Min, P25, Avg, P75, Max float64
}

// Distribution returns the per-bank count distribution for bucket i.
func (tl *Timeline) Distribution(i int) Dist {
	if i < 0 || i >= len(tl.counts) {
		return Dist{}
	}
	vals := make([]float64, tl.banks)
	sum := 0.0
	for b, c := range tl.counts[i] {
		vals[b] = float64(c)
		sum += float64(c)
	}
	sort.Float64s(vals)
	n := len(vals)
	return Dist{
		Min: vals[0],
		P25: vals[n/4],
		Avg: sum / float64(n),
		P75: vals[(3*n)/4],
		Max: vals[n-1],
	}
}

// Imbalance returns max/avg over the whole timeline — a scalar load
// imbalance figure.
func (tl *Timeline) Imbalance() float64 {
	totals := make([]float64, tl.banks)
	sum := 0.0
	for _, bucket := range tl.counts {
		for b, c := range bucket {
			totals[b] += float64(c)
			sum += float64(c)
		}
	}
	if sum == 0 {
		return 1
	}
	max := 0.0
	for _, t := range totals {
		if t > max {
			max = t
		}
	}
	return max / (sum / float64(tl.banks))
}

// Table renders aligned text tables mirroring the paper's figures.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the formatted rows.
func (t *Table) Rows() [][]string { return t.rows }

// Render writes the table, aligned, to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, strings.Join(sep, "  "))
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Geomean returns the geometric mean of positive values; zero or negative
// values are skipped.
func Geomean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

module affinityalloc

go 1.22

package affinityalloc_test

import (
	"fmt"
	"testing"

	"affinityalloc"
)

func TestPublicAllocatorAPI(t *testing.T) {
	s, err := affinityalloc.New(affinityalloc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	a, err := s.RT.AllocAffine(affinityalloc.AffineSpec{ElemSize: 4, NumElem: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RT.AllocAffine(affinityalloc.AffineSpec{ElemSize: 4, NumElem: 1 << 12, AlignTo: a.Base})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int64{0, 100, 4095} {
		if s.RT.BankOf(a.ElemAddr(i)) != s.RT.BankOf(b.ElemAddr(i)) {
			t.Fatalf("element %d not colocated", i)
		}
	}

	// Irregular allocation near an existing address.
	n, err := s.RT.AllocNear(64, []affinityalloc.Addr{a.ElemAddr(500)})
	if err != nil {
		t.Fatal(err)
	}
	// Under the default Hybrid-5 policy with an empty system the node
	// lands on or near the hinted bank.
	if d := s.Mesh.Hops(s.RT.BankOf(n), s.RT.BankOf(a.ElemAddr(500))); d > 2 {
		t.Errorf("irregular allocation %d hops from its affinity target", d)
	}
	if err := s.RT.Free(n); err != nil {
		t.Fatal(err)
	}
}

func TestPublicWorkloadAPI(t *testing.T) {
	g := affinityalloc.Kronecker(10, 8, 1)
	w := affinityalloc.BFSWorkload(g, g.Transpose())
	var base affinityalloc.Result
	for i, mode := range affinityalloc.Modes {
		res, err := affinityalloc.RunWorkload(affinityalloc.DefaultConfig(), w, mode)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res
		} else if res.Checksum != base.Checksum {
			t.Errorf("%v result differs", mode)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := affinityalloc.Experiments()
	if len(exps) != 14 {
		t.Errorf("registry has %d experiments, want 14", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"fig4", "fig6", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "t2", "t3", "t4"} {
		if !seen[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
}

// ExampleNew demonstrates the Fig-8 inter-array alignment: the
// runtime chooses a doubled interleaving for the double-width array so
// element i of every array shares a bank.
func ExampleNew() {
	s, _ := affinityalloc.New(affinityalloc.DefaultConfig())
	a, _ := s.RT.AllocAffine(affinityalloc.AffineSpec{ElemSize: 4, NumElem: 1 << 12})
	c, _ := s.RT.AllocAffine(affinityalloc.AffineSpec{ElemSize: 8, NumElem: 1 << 12, AlignTo: a.Base})
	fmt.Println("A interleave:", a.Interleave)
	fmt.Println("C interleave:", c.Interleave)
	fmt.Println("colocated:", s.RT.BankOf(a.ElemAddr(999)) == s.RT.BankOf(c.ElemAddr(999)))
	// Output:
	// A interleave: 64
	// C interleave: 128
	// colocated: true
}

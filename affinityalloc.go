// Package affinityalloc is a from-scratch reproduction of "Affinity
// Alloc: Taming Not-So Near-Data Computing" (MICRO 2023): an
// affinity-aware memory allocator for near-data computing, together with
// the full simulated substrate it needs — a tiled multicore with a banked
// NUCA last-level cache, a mesh NoC, near-stream computing engines, an
// interleave-pool OS layer, and the co-designed data structures (spatially
// distributed queues, Linked CSR).
//
// # Quick start
//
//	s, err := affinityalloc.New(affinityalloc.DefaultConfig())
//	if err != nil {
//		log.Fatal(err)
//	}
//	a, _ := s.RT.AllocAffine(affinityalloc.AffineSpec{ElemSize: 4, NumElem: 1 << 20})
//	b, _ := s.RT.AllocAffine(affinityalloc.AffineSpec{ElemSize: 4, NumElem: 1 << 20, AlignTo: a.Base})
//	// a[i] and b[i] now share an L3 bank for every i.
//
// New is the canonical constructor: it validates the configuration and
// returns an error. The deprecated NewSystem wrapper panics instead and
// remains only for source compatibility.
//
// The same allocator is also servable as a long-running daemon speaking
// a versioned HTTP/JSON API (affinityd/v1); see cmd/affinityd and
// cmd/affload.
//
// Workloads (the paper's Table-3 benchmarks) run under three
// configurations: InCore (conventional OOO cores), NearL3 (near-stream
// computing with an affinity-oblivious layout), and AffAlloc (near-stream
// computing plus affinity allocation and co-designed data structures).
// The harness regenerates every figure and table of the paper's
// evaluation; see EXPERIMENTS.md.
package affinityalloc

import (
	"affinityalloc/internal/core"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/harness"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/workloads"
)

// Core simulated-system types.
type (
	// Config parameterizes a simulated system (Table 2 defaults).
	Config = sys.Config
	// System is one assembled machine: mesh, memory, NoC, cores, stream
	// engines, and the affinity allocator runtime (field RT).
	System = sys.System
	// Mode selects the execution configuration.
	Mode = sys.Mode
	// Metrics is what one run reports.
	Metrics = sys.Metrics
)

// Allocator API types (the paper's contribution).
type (
	// AffineSpec mirrors the paper's AffineArray struct (Fig 8).
	AffineSpec = core.AffineSpec
	// ArrayInfo records the layout chosen for an affine array.
	ArrayInfo = core.ArrayInfo
	// Policy is an irregular bank-selection policy (§5.2).
	Policy = core.Policy
	// PolicyConfig is a policy plus its load-balance weight H (Eq. 4).
	PolicyConfig = core.PolicyConfig
	// Addr is a simulated virtual address.
	Addr = memsim.Addr
)

// Workload types.
type (
	// Workload is one Table-3 benchmark with fixed parameters.
	Workload = workloads.Workload
	// Result is one run's outcome.
	Result = workloads.Result
	// Graph is a CSR directed graph.
	Graph = graph.Graph
)

// Execution configurations.
const (
	// InCore runs on the OOO cores; nothing is offloaded.
	InCore = sys.InCore
	// NearL3 offloads streams but is oblivious to data affinity.
	NearL3 = sys.NearL3
	// AffAlloc adds affinity allocation and co-designed structures.
	AffAlloc = sys.AffAlloc
)

// Bank-selection policies (§5.2 / Fig 13).
const (
	// Rnd picks a uniformly random bank.
	Rnd = core.Rnd
	// Lnr picks banks round-robin.
	Lnr = core.Lnr
	// MinHop picks the bank nearest the affinity addresses.
	MinHop = core.MinHop
	// Hybrid trades affinity against load balance (Eq. 4).
	Hybrid = core.Hybrid
)

// Modes lists the three configurations in presentation order.
var Modes = sys.Modes

// DefaultConfig returns the Table-2 system: an 8x8 mesh, 64 L3 banks of
// 1MB, 4 DRAM channels at the corners, and the Hybrid-5 policy.
func DefaultConfig() Config { return sys.DefaultConfig() }

// DefaultPolicy returns the paper's default bank-selection policy,
// Hybrid-5.
func DefaultPolicy() PolicyConfig { return core.DefaultPolicy() }

// New builds a simulated system. The configuration is validated first
// (see Config.Validate), so a bad geometry or policy comes back as an
// actionable error instead of a panic deep in assembly.
func New(cfg Config) (*System, error) { return sys.New(cfg) }

// NewSystem builds a simulated system, panicking on an invalid
// configuration.
//
// Deprecated: use New, which validates the configuration and returns an
// error instead of panicking. NewSystem remains for source
// compatibility only.
func NewSystem(cfg Config) *System { return sys.MustNew(cfg) }

// RunWorkload builds a fresh system from cfg and runs w under mode.
func RunWorkload(cfg Config, w Workload, mode Mode) (Result, error) {
	return workloads.Run(cfg, w, mode)
}

// Kronecker generates an R-MAT graph with 2^scale vertices and about
// avgDeg edges per vertex (Table 3's generator).
func Kronecker(scale, avgDeg int, seed int64) *Graph {
	return graph.Kronecker(scale, avgDeg, seed)
}

// PowerLaw generates a power-law graph with n vertices and n*avgDeg
// distinct edges (the Fig-19 generator).
func PowerLaw(n int32, avgDeg int, seed int64) *Graph {
	return graph.PowerLaw(n, avgDeg, seed)
}

// Experiment is one regenerable table or figure from the paper.
type Experiment = harness.Experiment

// Experiments lists every regenerable artifact in paper order.
func Experiments() []Experiment { return harness.Experiments() }

// VecAddWorkload builds the vector-add microbenchmark (Fig 4) over n
// float32 elements.
func VecAddWorkload(n int64) Workload {
	return workloads.VecAdd{N: n, ForceDelta: -1}
}

// BFSWorkload builds the direction-switching BFS benchmark over g (gt is
// its transpose; source is the highest-degree vertex).
func BFSWorkload(g, gt *Graph) Workload {
	return workloads.BFS{G: g, GT: gt, Src: -1}
}

// PageRankWorkload builds the PageRank benchmark with the paper's
// per-configuration direction choice.
func PageRankWorkload(g, gt *Graph, iters int) Workload {
	return workloads.PageRank{G: g, GT: gt, Iters: iters, Best: true}
}

// SSSPWorkload builds the shortest-paths benchmark; g must carry edge
// weights (Graph.AddUniformWeights).
func SSSPWorkload(g *Graph) Workload {
	return workloads.SSSP{G: g, Src: -1}
}

// LinkListWorkload builds the linked-list search benchmark.
func LinkListWorkload(lists, nodesPerList int) Workload {
	return workloads.LinkList{Lists: lists, Nodes: nodesPerList, Queries: 1}
}

// HashJoinWorkload builds the hash-join benchmark.
func HashJoinWorkload(buildRows, probeRows, buckets int64) Workload {
	return workloads.HashJoin{BuildRows: buildRows, ProbeRows: probeRows, Buckets: buckets, HitRate: 1.0 / 8}
}

// BinTreeWorkload builds the binary-search-tree benchmark.
func BinTreeWorkload(keys, lookups int) Workload {
	return workloads.BinTree{Keys: keys, Lookups: lookups}
}

// HotspotWorkload builds the 2D-stencil benchmark.
func HotspotWorkload(rows, cols int64, iters int) Workload {
	return workloads.NewHotspot(rows, cols, iters)
}

package affinityalloc

// This file holds one testing.B benchmark per table and figure of the
// paper's evaluation (regenerating the artifact end to end at tiny
// scale; run `cmd/afftables -scale default|paper` for the full-size
// numbers), plus the ablation benchmarks DESIGN.md §4 calls out.

import (
	"fmt"
	"testing"

	"affinityalloc/internal/bench"
	"affinityalloc/internal/core"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/harness"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/topo"
	"affinityalloc/internal/workloads"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opt := harness.Options{Scale: harness.Tiny, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := e.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// Figures and tables (§7).

func BenchmarkFig4VecAddLayoutSweep(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig6IrregularLayoutOracle(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkTable2SystemParameters(b *testing.B)    { benchExperiment(b, "t2") }
func BenchmarkTable3WorkloadParameters(b *testing.B)  { benchExperiment(b, "t3") }
func BenchmarkFig12Overall(b *testing.B)              { benchExperiment(b, "fig12") }
func BenchmarkFig13PolicySensitivity(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14AtomicDistribution(b *testing.B)   { benchExperiment(b, "fig14") }
func BenchmarkFig15AffineLargeInputs(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16LinkedCSRLargeGraphs(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17BFSCharacteristics(b *testing.B)   { benchExperiment(b, "fig17") }
func BenchmarkFig18BFSTimeline(b *testing.B)          { benchExperiment(b, "fig18") }
func BenchmarkFig19DegreeSweep(b *testing.B)          { benchExperiment(b, "fig19") }
func BenchmarkTable4RealGraphStandins(b *testing.B)   { benchExperiment(b, "t4") }
func BenchmarkFig20RealGraphs(b *testing.B)           { benchExperiment(b, "fig20") }

// Event-kernel microbenchmarks (internal/bench/kernel.go): the ladder
// queue against the retained container/heap reference, near-window and
// spill-path churn. `go test -bench Kernel` is the quick local check;
// cmd/affbench runs the same entries when refreshing BENCH_*.json.

func BenchmarkKernelChurnLadder(b *testing.B)       { bench.ChurnLadder(b) }
func BenchmarkKernelChurnHeap(b *testing.B)         { bench.ChurnHeap(b) }
func BenchmarkKernelChurnSpillLadder(b *testing.B)  { bench.ChurnSpillLadder(b) }
func BenchmarkKernelChurnSpillHeap(b *testing.B)    { bench.ChurnSpillHeap(b) }
func BenchmarkKernelScheduleArgLadder(b *testing.B) { bench.ScheduleArgLadder(b) }
func BenchmarkKernelScheduleArgHeap(b *testing.B)   { bench.ScheduleArgHeap(b) }
func BenchmarkKernelSameCycleLadder(b *testing.B)   { bench.SameCycleLadder(b) }
func BenchmarkKernelChurnSparseLadder(b *testing.B) { bench.ChurnSparseLadder(b) }
func BenchmarkKernelChurnSparseHeap(b *testing.B)   { bench.ChurnSparseHeap(b) }
func BenchmarkKernelShardPDES1(b *testing.B)        { bench.ShardPDES1(b) }
func BenchmarkKernelShardPDES2(b *testing.B)        { bench.ShardPDES2(b) }
func BenchmarkKernelShardPDES4(b *testing.B)        { bench.ShardPDES4(b) }

// Per-workload benchmarks: one simulated run per iteration under each
// configuration, reporting simulated cycles as a custom metric.

func benchWorkload(b *testing.B, w workloads.Workload, mode sys.Mode) {
	benchWorkloadCfg(b, sys.DefaultConfig(), w, mode)
}

func benchWorkloadCfg(b *testing.B, cfg sys.Config, w workloads.Workload, mode sys.Mode) {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := workloads.Run(cfg, w, mode)
		if err != nil {
			b.Fatal(err)
		}
		cycles = uint64(res.Metrics.Cycles)
	}
	b.ReportMetric(float64(cycles), "simcycles")
}

func BenchmarkWorkloads(b *testing.B) {
	tinyGraph := graph.Kronecker(11, 8, 42)
	tinyGT := tinyGraph.Transpose()
	weighted := graph.Kronecker(11, 8, 42)
	weighted.AddUniformWeights(1, 255, 42)
	ws := []workloads.Workload{
		workloads.VecAdd{N: 1 << 16, ForceDelta: -1},
		workloads.Pathfinder{Cols: 32 * 1024, Steps: 2},
		workloads.NewHotspot(64, 1024, 2),
		workloads.NewSrad(32, 1024, 1),
		workloads.Hotspot3D{Rows: 32, Cols: 256, Layers: 8, Iters: 2},
		workloads.PageRank{G: tinyGraph, GT: tinyGT, Iters: 2, Best: true},
		workloads.BFS{G: tinyGraph, GT: tinyGT, Src: -1},
		workloads.SSSP{G: weighted, Src: -1},
		workloads.LinkList{Lists: 120, Nodes: 128, Queries: 1},
		workloads.HashJoin{BuildRows: 8 << 10, ProbeRows: 16 << 10, Buckets: 2 << 10, HitRate: 1.0 / 8},
		workloads.BinTree{Keys: 8 << 10, Lookups: 16 << 10},
	}
	for _, w := range ws {
		for _, mode := range sys.Modes {
			b.Run(fmt.Sprintf("%s/%v", w.Name(), mode), func(b *testing.B) {
				benchWorkload(b, w, mode)
			})
		}
	}
}

// Ablations (DESIGN.md §4).

// BenchmarkAblationHybridH sweeps the Eq.-4 load-balance weight beyond
// the paper's H values.
func BenchmarkAblationHybridH(b *testing.B) {
	g := graph.Kronecker(11, 8, 42)
	gt := g.Transpose()
	w := workloads.BFS{G: g, GT: gt, Policy: graph.PushOnly{}, Src: -1}
	for _, h := range []float64{0, 1, 3, 5, 7, 9} {
		b.Run(fmt.Sprintf("H=%g", h), func(b *testing.B) {
			cfg := sys.DefaultConfig()
			if h == 0 {
				cfg.Policy = core.PolicyConfig{Policy: core.MinHop}
			} else {
				cfg.Policy = core.PolicyConfig{Policy: core.Hybrid, H: h}
			}
			benchWorkloadCfg(b, cfg, w, sys.AffAlloc)
		})
	}
}

// BenchmarkAblationLinkedCSRNodeSize sweeps the linked-CSR node
// footprint: bigger nodes amortize chasing but coarsen placement.
func BenchmarkAblationLinkedCSRNodeSize(b *testing.B) {
	g := graph.Kronecker(11, 8, 42)
	gt := g.Transpose()
	for _, nodeBytes := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("node=%dB", nodeBytes), func(b *testing.B) {
			w := workloads.BFS{G: g, GT: gt, Policy: graph.PushOnly{}, Src: -1, LinkedNodeBytes: nodeBytes}
			benchWorkload(b, w, sys.AffAlloc)
		})
	}
}

// BenchmarkAblationSpatialQueue compares the spatially distributed work
// queue (Fig 9) against a conventional global queue under Aff-Alloc.
func BenchmarkAblationSpatialQueue(b *testing.B) {
	g := graph.Kronecker(11, 8, 42)
	gt := g.Transpose()
	for _, global := range []bool{false, true} {
		name := "spatial"
		if global {
			name = "global"
		}
		b.Run(name, func(b *testing.B) {
			w := workloads.BFS{G: g, GT: gt, Policy: graph.PushOnly{}, Src: -1, ForceGlobalQueue: global}
			benchWorkload(b, w, sys.AffAlloc)
		})
	}
}

// BenchmarkAblationBankNumbering compares the paper's 1D row-major bank
// numbering against the quadrant (Z-order) alternative of §4.1.
func BenchmarkAblationBankNumbering(b *testing.B) {
	g := graph.Kronecker(11, 8, 42)
	gt := g.Transpose()
	w := workloads.BFS{G: g, GT: gt, Src: -1}
	for _, numbering := range []struct {
		name string
		n    topo.Numbering
	}{{"row-major", topo.RowMajor}, {"quadrant", topo.Quadrant}} {
		b.Run(numbering.name, func(b *testing.B) {
			cfg := sys.DefaultConfig()
			cfg.Numbering = numbering.n
			benchWorkloadCfg(b, cfg, w, sys.AffAlloc)
		})
	}
}

// BenchmarkAblationInterleaveFallback measures the cost of affine
// requests that cannot be aligned exactly, exercising the padding and
// fallback paths of §4.2.
func BenchmarkAblationInterleaveFallback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sys.MustNew(sys.DefaultConfig())
		a, err := s.RT.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: 1 << 14})
		if err != nil {
			b.Fatal(err)
		}
		// Element-size ratio 3 with p=7: unalignable, must pad or fall
		// back without failing.
		if _, err := s.RT.AllocAffine(core.AffineSpec{ElemSize: 12, NumElem: 1 << 10, AlignTo: a.Base, AlignP: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionDynamicGraph runs the §8 evolving-graph extension
// under each configuration.
func BenchmarkExtensionDynamicGraph(b *testing.B) {
	w := workloads.DynGraph{G: graph.Kronecker(10, 8, 42), Batches: 2, UpdatesPerBatch: 1024}
	for _, mode := range sys.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			benchWorkload(b, w, mode)
		})
	}
}

// BenchmarkAblationNPOTInterleave measures the §4.1 future-work
// extension: exact non-power-of-two alignment versus element padding,
// reporting the padding overhead each approach incurs.
func BenchmarkAblationNPOTInterleave(b *testing.B) {
	for _, npot := range []bool{false, true} {
		name := "padded"
		if npot {
			name = "npot"
		}
		b.Run(name, func(b *testing.B) {
			var padBytes uint64
			for i := 0; i < b.N; i++ {
				cfg := sys.DefaultConfig()
				cfg.Mem.AllowNPOT = npot
				s := sys.MustNew(cfg)
				a, err := s.RT.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: 1 << 16})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.RT.AllocAffine(core.AffineSpec{ElemSize: 12, NumElem: 1 << 14, AlignTo: a.Base}); err != nil {
					b.Fatal(err)
				}
				padBytes = s.RT.Stats.PadBytes
			}
			b.ReportMetric(float64(padBytes), "padbytes")
		})
	}
}
